// ShardSet — N independent UPSkipList shards behind one routing facade.
//
// Horizontal sharding (ROADMAP item 1): the key space is partitioned by the
// fixed hash in common/shardmap.hpp across `shard_count` fully independent
// stores — each with its own pool set, chunk/block allocators, DRAM-index
// rebuild, and (in the server) its own worker group and group committer.
// Nothing is shared between shards but the process: no cross-shard locks,
// no shared allocator state, no shared epoch. That is what makes sharding
// the NUMA-scaling lever — each shard's pools and workers can live on one
// (virtual) NUMA node, as §5.1.2's per-pool placement intends.
//
// Durability of the topology: every member store persists (shard_count,
// shard_index) in its root. open() re-validates that the pool sets on disk
// form exactly the topology being assembled — a swapped shard file, a
// missing shard, or a count mismatch is refused before any key is served
// from the wrong partition.
//
// Recovery: open() runs every shard's UPSkipList::open in parallel (they
// touch disjoint pools; the RIV runtime serializes its setup phase
// internally) and records per-shard wall-clock timings for the startup
// report. A 1-shard set behaves exactly like a bare UPSkipList.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/shardmap.hpp"
#include "core/upskiplist.hpp"

namespace upsl::core {

/// Cross-shard range scan over [lo, hi] in global key order: scans each of
/// the `n` shards (a hash partition scatters any key range across all of
/// them; each per-shard run comes back sorted) and k-way merges the runs,
/// stopping after `limit` entries (0 = unlimited). Returns the number of
/// entries appended to `out`. Shared by ShardSet and the server's SCAN verb.
std::size_t scan_merged(UPSkipList* const* shards, std::uint32_t n,
                        std::uint64_t lo, std::uint64_t hi, std::size_t limit,
                        std::vector<ScanEntry>& out);

/// Incremental cross-shard k-way merge (docs/scan.md). Instead of
/// materializing every shard's full run before merging, the cursor pulls
/// bounded chunks from each shard on demand (UPSkipList::scan_chunk) and
/// emits merged output as soon as every shard has a buffered head — so the
/// server's first SCAN frame leaves before any shard has been fully
/// scanned, and a scan truncated by a limit never does more per-shard work
/// than roughly the limit itself.
///
/// Merge invariant: a shard's buffer always holds that shard's smallest
/// un-emitted keys (its chunk covers a contiguous key range and is
/// refilled the moment it empties), so the linear head pick is globally
/// correct. Shards partition the key space, so no cross-shard dedup is
/// needed.
class MergedScanCursor {
 public:
  /// `refill` is the per-shard chunk size requested from scan_chunk
  /// (0 picks a default). The shard array must outlive the cursor.
  MergedScanCursor(UPSkipList* const* shards, std::uint32_t n,
                   std::uint64_t lo, std::uint64_t hi,
                   std::size_t refill = 0);

  /// Appends up to `max_entries` merged entries (in global key order,
  /// continuing where the previous call stopped) to `out`. Returns the
  /// number appended; 0 means the range is exhausted.
  std::size_t next(std::size_t max_entries, std::vector<ScanEntry>& out);

  /// True once every shard's range is fully emitted.
  bool exhausted() const;

  /// Smallest key not yet emitted — the `lo` a brand-new cursor (possibly
  /// in a later request) would need to continue this scan. Only meaningful
  /// while !exhausted().
  std::uint64_t resume_key() const;

 private:
  struct Run {
    std::vector<ScanEntry> buf;
    std::size_t head = 0;      // next un-emitted index into buf
    std::uint64_t resume = 0;  // next scan_chunk lo for this shard
    bool drained = false;      // shard range exhausted
  };

  void refill(std::uint32_t i);

  UPSkipList* const* shards_;
  std::uint32_t n_;
  std::uint64_t hi_;
  std::size_t refill_;
  std::vector<Run> runs_;
};

class ShardSet {
 public:
  /// Formats every shard's pools and creates the member stores. `pools[i]`
  /// is shard i's pool set (pool 0 of each holds that shard's root). The
  /// shard topology fields of `opts` are overwritten per member.
  static std::unique_ptr<ShardSet> create(
      std::vector<std::vector<pmem::Pool*>> pools, const Options& opts);

  /// Reconnects to an existing shard set, opening all members in parallel.
  /// Throws if any member's durable (shard_count, shard_index) disagrees
  /// with its position in `pools` — the on-disk topology is authoritative.
  static std::unique_ptr<ShardSet> open(
      std::vector<std::vector<pmem::Pool*>> pools);

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t shard_of(std::uint64_t key) const {
    return shard_of_key(key, shard_count());
  }
  UPSkipList& shard(std::uint32_t i) { return *shards_[i]; }
  UPSkipList& shard_for(std::uint64_t key) { return *shards_[shard_of(key)]; }

  /// Wall-clock cost of shard i's open() (0 for freshly created sets).
  std::uint64_t open_ns(std::uint32_t i) const { return open_ns_[i]; }

  // Key-routed single-key operations (same contracts as UPSkipList).
  std::optional<std::uint64_t> insert(std::uint64_t key, std::uint64_t value) {
    return shard_for(key).insert(key, value);
  }
  std::optional<std::uint64_t> search(std::uint64_t key) {
    return shard_for(key).search(key);
  }
  std::optional<std::uint64_t> remove(std::uint64_t key) {
    return shard_for(key).remove(key);
  }

  /// Range scan over [lo, hi] in global key order (see core::scan_merged).
  std::size_t scan(std::uint64_t lo, std::uint64_t hi, std::size_t limit,
                   std::vector<ScanEntry>& out);

  /// Sum of live keys across shards (O(n) diagnostic).
  std::size_t count_keys();

  /// check_invariants on every shard; throws on the first violation.
  void check_invariants();

  /// Merged open-time integrity verdict across members (docs/integrity.md).
  /// A CorruptionError thrown by a member's open (unrepairable damage)
  /// propagates out of open() instead, distinct from the runtime_error a
  /// topology mismatch raises.
  IntegrityReport integrity() const;

  /// Deep re-verification (fsck) of every member, merged into one report.
  IntegrityReport verify_deep();

 private:
  ShardSet() = default;

  std::vector<std::unique_ptr<UPSkipList>> shards_;
  std::vector<std::uint64_t> open_ns_;
};

}  // namespace upsl::core
