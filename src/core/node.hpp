// UPSkipList node structure (thesis §4.2).
//
// A node overlays exactly one allocator block. The layout keeps the hot
// metadata — split lock, split counter, epoch id, height — and the node's
// first key inside the first cache line, so the traversal's recovery check
// and first-key comparison cost no extra fetches (§4.4):
//
//   off  0  split_lock    reader-writer lock guarding node splits
//   off  8  split_count   bumped on every completed split; validates reads
//   off 16  epoch_id      failure-free epoch (shared offset with MemBlock)
//   off 24  meta          packed height; never equals MemBlock::kFreeState
//   off 32  owner_tag     allocator ownership stamp (shared with MemBlock)
//   off 40  self_riv      this node's own RIV
//   off 48  reserved
//   off 56  keys[0]       first of keys_per_node keys (rest follow)
//   ...     values[keys_per_node]
//   ...     next[max_height] RIVs
//
// keys_per_node and max_height are store-creation parameters, so field
// offsets are computed through a NodeLayout rather than a static struct.
#pragma once

#include <cstdint>

#include "alloc/block.hpp"
#include "common/compiler.hpp"
#include "pmem/persist.hpp"
#include "riv/riv.hpp"

namespace upsl::core {

/// Key 0 marks an empty slot (freshly allocated blocks are zeroed, so a CAS
/// 0 -> key claims a slot); UINT64_MAX is the tail sentinel's first key.
/// User keys therefore live in [1, UINT64_MAX - 1].
inline constexpr std::uint64_t kNullKey = 0;
inline constexpr std::uint64_t kTailKey = ~0ULL;
/// Value UINT64_MAX marks a removed / never-inserted slot (§4.6).
inline constexpr std::uint64_t kTombstone = ~0ULL;

struct NodeLayout {
  std::uint32_t keys_per_node;
  std::uint32_t max_height;

  static constexpr std::size_t kKeysOffset = 56;

  std::size_t values_offset() const {
    return kKeysOffset + 8ull * keys_per_node;
  }
  std::size_t next_offset() const {
    return values_offset() + 8ull * keys_per_node;
  }
  std::size_t node_size() const {
    return align_up(next_offset() + 8ull * max_height, kCacheLineSize);
  }
};

/// Split-lock word: bit 63 = writer, low 32 bits = reader count. The word is
/// PMEM-resident; the writer bit is persisted when taken (so an interrupted
/// split is detectable after a crash, Function 11), reader counts are not
/// (stale counts are drained during recovery, Function 10 line 122).
inline constexpr std::uint64_t kWriterBit = 1ULL << 63;
inline constexpr std::uint64_t kReaderMask = 0xffffffffULL;

/// Cheap typed view over a node's raw memory.
class NodeView {
 public:
  NodeView() = default;
  NodeView(char* p, const NodeLayout* layout) : p_(p), layout_(layout) {}

  char* raw() const { return p_; }
  bool valid() const { return p_ != nullptr; }

  std::uint64_t& lock_word() const { return word(0); }
  std::uint64_t& split_count() const { return word(8); }
  std::uint64_t& epoch_id() const { return word(16); }
  std::uint64_t& meta() const { return word(24); }
  std::uint64_t& owner_tag() const { return word(32); }
  std::uint64_t& self_riv() const { return word(40); }
  /// Number of leading key slots known to be sorted (set when a split
  /// produces a fully sorted node; enables the §7 binary-search
  /// optimization when Options::sorted_splits is on).
  std::uint64_t& sorted_count() const { return word(48); }

  std::uint64_t& key(std::uint32_t i) const {
    return word(NodeLayout::kKeysOffset + 8ull * i);
  }
  /// Raw key-slot array for the vectorized scan kernels (common/simd.hpp).
  /// Slots are naturally aligned 8-byte words; see simd.hpp for why plain
  /// vector loads of them are sound under concurrent slot-claim CASes.
  const std::uint64_t* keys() const {
    return reinterpret_cast<const std::uint64_t*>(p_ + NodeLayout::kKeysOffset);
  }
  std::uint64_t& value(std::uint32_t i) const {
    return word(layout_->values_offset() + 8ull * i);
  }
  std::uint64_t& next(std::uint32_t level) const {
    return word(layout_->next_offset() + 8ull * level);
  }

  std::uint32_t height() const {
    return static_cast<std::uint32_t>(pmem::pm_load(meta()) & 0xff);
  }
  std::uint64_t first_key() const { return pmem::pm_load(key(0)); }
  bool is_tail() const { return first_key() == kTailKey; }

  // ---- split lock -----------------------------------------------------

  bool write_locked() const {
    return (pmem::pm_load(lock_word()) & kWriterBit) != 0;
  }

  /// Try-lock semantics (Function 16 line 200): fails instead of waiting,
  /// and refuses to lock a node whose epoch is stale — the caller must
  /// re-traverse, which claims and repairs the node first. This is what
  /// makes the recovery's reader-drain race-free: no live reader can be
  /// incrementing the count of a stale node.
  bool try_read_lock(std::uint64_t current_epoch) const {
    while (true) {
      if (pmem::pm_load(epoch_id()) != current_epoch) return false;
      std::uint64_t w = pmem::pm_load(lock_word());
      if ((w & kWriterBit) != 0) return false;
      if (pmem::pm_cas(lock_word(), w, w + 1)) return true;
    }
  }

  void read_unlock() const {
    pmem::pm_fetch_add(lock_word(), ~std::uint64_t{0});  // -1
  }

  bool try_write_lock(std::uint64_t current_epoch) const {
    if (pmem::pm_load(epoch_id()) != current_epoch) return false;
    std::uint64_t expected = 0;
    return pmem::pm_cas(lock_word(), expected, kWriterBit);
  }

  void write_unlock() const {
    pmem::pm_store(lock_word(), std::uint64_t{0});
  }

  /// DrainReaders (Function 10): clear a stale reader count left by threads
  /// that died in the crash, preserving a durable writer bit. Uses CAS, not
  /// a blind store — the blind-store version was one of the two bugs the
  /// thesis' linearizability testing caught (§6.3).
  void drain_stale_readers() const {
    while (true) {
      const std::uint64_t w = pmem::pm_load(lock_word());
      if ((w & kReaderMask) == 0) return;
      std::uint64_t expected = w;
      if (pmem::pm_cas(lock_word(), expected, w & kWriterBit)) return;
    }
  }

 private:
  std::uint64_t& word(std::size_t off) const {
    return *reinterpret_cast<std::uint64_t*>(p_ + off);
  }

  char* p_ = nullptr;
  const NodeLayout* layout_ = nullptr;
};

static_assert(alloc::kObjEpochOffset == 16 && alloc::kObjStateOffset == 24 &&
                  alloc::kObjOwnerOffset == 32,
              "node layout must keep allocator-shared offsets");

}  // namespace upsl::core
