#include "core/upskiplist.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/checksum.hpp"
#include "common/crashpoint.hpp"
#include "common/simd.hpp"
#include "pmem/ack_batch.hpp"
#include "pmem/flush_set.hpp"

namespace upsl::core {

namespace {

/// Liveness diagnostic: converts an unexpected livelock in a retry loop
/// into an exception naming the loop instead of a silent spin. The bound is
/// far above anything a correct execution reaches.
///
/// Doubles as the quiesce hook for cooperative crash injection: when a
/// quiesce-armed crash has fired, every surviving thread must die at an
/// instruction boundary of the modeled machine before the harness snapshots
/// the persistence domain. Retry loops that spin on state owned by the dead
/// thread (a write lock it was holding, a split it never finished) contain
/// few or no crash points, so the guard polls the quiesce flag every 256
/// ticks — cheap enough for the per-hop traversal guard, prompt enough that
/// survivors die within microseconds instead of wedging until the livelock
/// bound.
struct SpinGuard {
  std::uint64_t n = 0;
  const char* where;
  explicit SpinGuard(const char* w) : where(w) {}
  void tick() {
    if (UPSL_UNLIKELY((++n & 255u) == 0)) CrashPoints::instance().poll();
    if (UPSL_UNLIKELY(n > (8u << 20)))
      throw std::runtime_error(std::string("livelock detected in ") + where);
  }
};

}  // namespace

using pmem::persist;
using pmem::pm_cas;
using pmem::pm_cas_value;
using pmem::pm_load;
using pmem::pm_store;

namespace {

constexpr std::uint64_t kStoreMagic = 0x5550534b49504c53ULL;  // "UPSKIPLS"

/// Persistent store root, at the start of pool 0's root area.
struct StoreRoot {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t epoch_id;
  std::uint64_t num_pools;
  std::uint64_t arenas_per_pool;
  std::uint64_t keys_per_node;
  std::uint64_t max_height;
  std::uint64_t block_size;
  std::uint64_t recovery_budget;
  std::uint64_t sorted_splits;
  std::uint64_t head_riv;
  std::uint64_t tail_riv;
  /// 1 = the store last ran with the DRAM search layer, so the PMEM index
  /// towers (next pointers above level 0) are stale and must be rebuilt
  /// before a persistent-tower session may trust them. Flipped durably only
  /// after the corresponding rebuild completed (mode-switch protocol in
  /// docs/dram-index.md).
  std::uint64_t index_mode;
  /// Durable shard topology (common/shardmap.hpp): this store is shard
  /// `shard_index` of a `shard_count`-way key-space partition. 0/0 in
  /// stores created before sharding, read back as the unsharded 1/0.
  /// core::ShardSet validates these at open so a mis-assembled pool set
  /// (wrong count, swapped shard files) is refused instead of served.
  std::uint64_t shard_count;
  std::uint64_t shard_index;
  /// CRC32C stamp (common/checksum.hpp conventions: 0 = unstamped) over
  /// every field except magic, epoch_id and the stamp itself. epoch_id is
  /// excluded because the open-time bump persists a different cache line;
  /// every *covered* mutable field (head_riv, tail_riv, index_mode) shares
  /// this word's 64-byte line, so a restamp always commits atomically with
  /// the field it covers under the line-granular persistence model.
  std::uint64_t checksum;
};

constexpr std::size_t kLogsOffset = 128;  // after StoreRoot, line-aligned
static_assert(sizeof(StoreRoot) <= kLogsOffset);
static_assert(offsetof(StoreRoot, recovery_budget) == 64 &&
                  offsetof(StoreRoot, checksum) == 120,
              "index_mode/head/tail/checksum must share the root's 2nd line");

/// Store-root integrity stamp, over the covered fields in declaration order
/// with `index_mode` substitutable (the verify fallback tries both legal
/// values to distinguish a damaged mode flag from deeper damage).
std::uint32_t root_stamp_with_mode(const StoreRoot& r, std::uint64_t mode) {
  const std::uint64_t w[13] = {
      pm_load(r.version),     pm_load(r.num_pools),
      pm_load(r.arenas_per_pool), pm_load(r.keys_per_node),
      pm_load(r.max_height),  pm_load(r.block_size),
      pm_load(r.recovery_budget), pm_load(r.sorted_splits),
      pm_load(r.head_riv),    pm_load(r.tail_riv),
      mode,                   pm_load(r.shard_count),
      pm_load(r.shard_index)};
  return upsl::checksum_stamp(w, sizeof(w));
}

std::uint32_t root_stamp(const StoreRoot& r) {
  return root_stamp_with_mode(r, pm_load(r.index_mode));
}

std::size_t arenas_offset() {
  return kLogsOffset + sizeof(alloc::ThreadLog) * kMaxThreads;
}

/// Per-thread magazine descriptors live after the arena headers. Both the
/// root area (4096-aligned) and the preceding structures are multiples of a
/// cache line, so the alignas(64) descriptors land naturally aligned.
std::size_t magazines_offset(std::size_t num_pools, std::size_t arenas_per_pool) {
  return arenas_offset() + sizeof(alloc::ArenaHeader) * num_pools * arenas_per_pool;
}

/// The durable client-session table (src/detect) occupies the root-area tail
/// after the magazine descriptors, rounded up to a cache line. Stores whose
/// root area is too small simply run without detectability (the table region
/// reads back without its magic, exactly like a legacy store).
std::size_t sessions_offset(std::size_t num_pools, std::size_t arenas_per_pool) {
  const std::size_t off = magazines_offset(num_pools, arenas_per_pool) +
                          sizeof(alloc::MagazineDesc) * kMaxThreads;
  return (off + 63) & ~std::size_t{63};
}

StoreRoot* root_of(alloc::ChunkAllocator& ca) {
  return reinterpret_cast<StoreRoot*>(ca.root_area());
}

/// Kill switch for the DRAM search layer (same contract as the SIMD /
/// magazine / flush-coalescing switches): set and non-"0" forces the
/// persistent-tower path. Read per attach so tests can flip it between
/// reopens of the same store.
bool dram_index_disabled_by_env() {
  const char* v = std::getenv("UPSL_DISABLE_DRAM_INDEX");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

unsigned default_rebuild_workers() {
  if (const char* v = std::getenv("UPSL_INDEX_REBUILD_WORKERS")) {
    const unsigned n = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(4u, hw == 0 ? 1u : hw);
}

/// Length of the leading populated, strictly ascending run of key slots —
/// the only prefix the sorted-prefix block search may trust. Every
/// sorted_count store clamps to this so no kNullKey hole or misordered key
/// can end up inside [0, sorted_count) (check_invariants asserts it).
/// Node-header meta word: height in the low byte (NodeView::height masks
/// with 0xff), CRC32C stamp over the node's immutable identity triple
/// (self_riv, key0, height) in the high 32 bits. The triple never changes
/// after make_node — key(0) is the node's routing key, which neither the
/// split erase loop (erases only keys >= the median, all > key0) nor split
/// recovery (nulls only keys duplicated in the successor, all > key0) can
/// touch — so every full-node persist re-flushes an unchanged stamp for
/// free. The packed word can never collide with MemBlock::kFreeState
/// (0xf2ee in bits 16..31; a real meta word has zeros there).
std::uint64_t node_meta_word(std::uint64_t self_riv, std::uint64_t key0,
                             std::uint32_t height) {
  const std::uint64_t w[3] = {self_riv, key0, height};
  return (static_cast<std::uint64_t>(upsl::checksum_stamp(w, sizeof(w)))
          << 32) |
         height;
}

std::uint32_t sorted_run_length(const NodeView& node, std::uint32_t K) {
  std::uint64_t prev_key = 0;
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < K; ++i) {
    const std::uint64_t k = pmem::pm_load(node.key(i));
    if (k == kNullKey || (i > 0 && k <= prev_key)) break;
    prev_key = k;
    ++run;
  }
  return run;
}

}  // namespace

Xoshiro256& UPSkipList::thread_rng() {
  static thread_local Xoshiro256 rng(
      0x9e3779b97f4a7c15ULL ^
      (static_cast<std::uint64_t>(ThreadRegistry::id()) << 32) ^
      reinterpret_cast<std::uintptr_t>(this));
  return rng;
}

// ---------------------------------------------------------------------------
// Creation / reconnection
// ---------------------------------------------------------------------------

void UPSkipList::attach(std::vector<pmem::Pool*> pools, bool creating,
                        const Options* opts) {
  if (pools.empty()) throw std::invalid_argument("need at least one pool");
  pools_ = std::move(pools);

  if (creating) {
    for (pmem::Pool* p : pools_) alloc::ChunkAllocator::format(*p, opts->chunk);
  }
  for (pmem::Pool* p : pools_)
    chunk_allocs_.push_back(std::make_unique<alloc::ChunkAllocator>(*p));

  StoreRoot* root = root_of(*chunk_allocs_[0]);
  char* root_area = chunk_allocs_[0]->root_area();

  if (creating) {
    layout_ = NodeLayout{opts->keys_per_node, opts->max_height};
    opts_ = *opts;
    const std::uint32_t arenas_per_pool =
        (opts->max_threads + static_cast<std::uint32_t>(pools_.size()) - 1) /
        static_cast<std::uint32_t>(pools_.size());
    const std::size_t need =
        magazines_offset(pools_.size(), arenas_per_pool) +
        sizeof(alloc::MagazineDesc) * kMaxThreads;
    if (need > chunk_allocs_[0]->root_size())
      throw std::invalid_argument("root area too small");
    std::memset(root_area, 0, need);
    root->version = 1;
    root->epoch_id = 1;
    root->num_pools = pools_.size();
    root->arenas_per_pool = arenas_per_pool;
    root->keys_per_node = opts->keys_per_node;
    root->max_height = opts->max_height;
    root->block_size = layout_.node_size();
    root->recovery_budget = opts->recovery_budget;
    root->sorted_splits = opts->sorted_splits ? 1 : 0;
    root->index_mode =
        (opts->dram_index && !dram_index_disabled_by_env()) ? 1 : 0;
    root->shard_count = opts->shard_count;
    root->shard_index = opts->shard_index;
    root->checksum = root_stamp(*root);
    persist(root_area, need);
  } else {
    if (pm_load(root->magic) != kStoreMagic)
      throw std::runtime_error("store root not found (wrong pool set?)");
    if (root->num_pools != pools_.size())
      throw std::runtime_error("pool count mismatch with stored root");
    // Verify the root's integrity stamp before trusting any geometry field.
    // A mismatch confined to index_mode (the only covered field that flips
    // during normal operation) is repairable: restore the stamped value and
    // rebuild the index defensively. Anything else — or a zeroed second
    // line, which the head/tail null check catches despite the 0-means-
    // unstamped convention — is unrecoverable damage to the 128-byte root.
    const auto stored =
        static_cast<std::uint32_t>(pm_load(root->checksum));
    if (pm_load(root->head_riv) == 0 || pm_load(root->tail_riv) == 0)
      throw CorruptionError("store root head/tail sentinel rivs are null");
    if (checksums_enabled() && stored != 0 && stored != root_stamp(*root)) {
      pmem::Stats::instance().checksum_failures.fetch_add(
          1, std::memory_order_relaxed);
      std::int64_t restored = -1;
      for (std::uint64_t m : {std::uint64_t{0}, std::uint64_t{1}})
        if (root_stamp_with_mode(*root, m) == stored) restored = static_cast<std::int64_t>(m);
      if (restored < 0)
        throw CorruptionError(
            "store root checksum mismatch (pool 0 root area damaged)");
      pm_store(root->index_mode, static_cast<std::uint64_t>(restored));
      persist(&root->index_mode, sizeof(root->index_mode));
      integrity_.root_mode_repaired = true;
    }
    layout_ = NodeLayout{static_cast<std::uint32_t>(root->keys_per_node),
                         static_cast<std::uint32_t>(root->max_height)};
    opts_.keys_per_node = layout_.keys_per_node;
    opts_.max_height = layout_.max_height;
    opts_.recovery_budget =
        static_cast<std::uint32_t>(root->recovery_budget);
    opts_.sorted_splits = root->sorted_splits != 0;
    // Legacy stores (root memset at create, fields never written) read 0.
    opts_.shard_count =
        root->shard_count == 0 ? 1
                               : static_cast<std::uint32_t>(root->shard_count);
    opts_.shard_index = static_cast<std::uint32_t>(root->shard_index);
  }

  // Single-pool stores skip the RIV pool-lookup stage (§4.3.1): this is the
  // "striped device" configuration of the evaluation. A shard-set member
  // never takes it, even with one pool — single-pool mode aliases every
  // dispatch entry to this pool's table, which would corrupt RIV resolution
  // for the sibling shards living in the same process.
  riv::Runtime::instance().set_single_pool_mode(
      pools_.size() == 1 && opts_.shard_count <= 1, pools_[0]->id());

  epoch_word_ = &root->epoch_id;

  std::vector<alloc::ChunkAllocator*> cas;
  for (auto& ca : chunk_allocs_) cas.push_back(ca.get());
  alloc::BlockAllocator::Config acfg;
  acfg.block_size = root->block_size;
  acfg.arenas_per_pool = static_cast<std::uint32_t>(root->arenas_per_pool);
  // Magazine descriptors sit after the arena headers when the root area has
  // room for them (it always does with the default 1 MiB root; a store
  // created with a smaller custom root simply runs without magazines).
  const std::size_t mags_off = magazines_offset(
      pools_.size(), static_cast<std::size_t>(root->arenas_per_pool));
  alloc::MagazineDesc* mags = nullptr;
  if (mags_off + sizeof(alloc::MagazineDesc) * kMaxThreads <=
      chunk_allocs_[0]->root_size()) {
    mags = reinterpret_cast<alloc::MagazineDesc*>(root_area + mags_off);
  }
  block_alloc_ = std::make_unique<alloc::BlockAllocator>(
      std::move(cas),
      reinterpret_cast<alloc::ArenaHeader*>(root_area + arenas_offset()),
      reinterpret_cast<alloc::ThreadLog*>(root_area + kLogsOffset),
      epoch_word_, acfg, mags);
  block_alloc_->set_reachability_fn(
      [this](const alloc::ThreadLog& log) { return log_block_reachable(log); });
  block_alloc_->set_block_reachability_fn(
      [this](std::uint64_t riv) { return block_reachable(riv); });

  const std::size_t sess_off = sessions_offset(
      pools_.size(), static_cast<std::size_t>(root->arenas_per_pool));
  const std::size_t sess_bytes =
      sess_off < chunk_allocs_[0]->root_size()
          ? chunk_allocs_[0]->root_size() - sess_off
          : 0;

  if (creating) {
    block_alloc_->bootstrap();
    init_sentinels();
    root->head_riv = head_riv_;
    root->tail_riv = tail_riv_;
    root->checksum = root_stamp(*root);
    persist(root, sizeof(*root));
    // Session table before the magic: a crash mid-create leaves an
    // unopenable store, never one missing its detectability region.
    if (sess_bytes > 0) {
      sessions_ = detect::SessionTable::format(root_area + sess_off,
                                               sess_bytes,
                                               opts->session_slots);
    }
    // Magic last: a crash mid-create leaves an unopenable store, never a
    // half-initialized one.
    pm_store(root->magic, kStoreMagic);
    persist(&root->magic, sizeof(root->magic));
  } else {
    head_riv_ = root->head_riv;
    tail_riv_ = root->tail_riv;
    // Start a new failure-free epoch (§4.1.3). After this single persisted
    // increment the store is ready to serve; all repair is deferred — arena
    // tails are re-anchored lazily by each thread's first epoch sync.
    pm_store(root->epoch_id, pm_load(root->epoch_id) + 1);
    persist(&root->epoch_id, sizeof(root->epoch_id));
    // Quarantine walk before anything trusts the level-0 chain: the index
    // rebuilds below feed node key0s into traversal hints, and a corrupted
    // key0 entering the hint path turns misses silently wrong. No-op on a
    // clean store (one header verify per node).
    if (checksums_enabled()) quarantine_scan();
    // Stores too small for magazine descriptors never run that sync, so
    // their (few, tiny) free lists are repaired eagerly instead.
    if (mags == nullptr) block_alloc_->repair_tails();
  }

  // Session-table recovery scan, run alongside the DRAM-index rebuild below
  // (both are open-time, read-mostly passes over disjoint regions). The scan
  // is tiny — a few KiB census seeding the claim counter — so the thread is
  // about overlap, not speed-up of the scan itself.
  std::thread session_recovery;
  // Joins on every exit from attach — the rebuilds below may throw (crash
  // injection arms recovery paths) and an unjoined std::thread terminates.
  struct JoinGuard {
    std::thread& t;
    ~JoinGuard() {
      if (t.joinable()) t.join();
    }
  } join_guard{session_recovery};
  if (!creating && sess_bytes > 0) {
    session_recovery = std::thread([this, root_area, sess_off, sess_bytes] {
      sessions_ =
          detect::SessionTable::recover(root_area + sess_off, sess_bytes);
    });
  }

  // Index-mode selection (docs/dram-index.md): the durable index_mode flag
  // says whether the PMEM towers were maintained by the previous session;
  // the env kill switch picks the mode for this one. Crossing modes runs
  // the corresponding rebuild before the store serves, and the flag only
  // flips after that rebuild completed — a crash mid-rebuild redoes it.
  index_mode_word_ = &root->index_mode;
  const bool use_dram = creating
                            ? (opts->dram_index && !dram_index_disabled_by_env())
                            : !dram_index_disabled_by_env();
  if (use_dram) {
    index_ = std::make_unique<DramIndex>(layout_.max_height);
    if (!creating) {
      rebuild_dram_index(0);
      if (pm_load(root->index_mode) != 1 || integrity_.root_mode_repaired) {
        // PMEM towers go stale from here on; record that durably before
        // the first un-mirrored insert can run. The restamp shares the
        // flag's cache line, so both commit atomically under one flush.
        pm_store(root->index_mode, std::uint64_t{1});
        pm_store(root->checksum,
                 static_cast<std::uint64_t>(root_stamp(*root)));
        persist(&root->index_mode, sizeof(root->index_mode));
      }
    }
  } else if (!creating &&
             (pm_load(root->index_mode) != 0 || integrity_.root_mode_repaired ||
              integrity_.nodes_quarantined != 0)) {
    // nodes_quarantined forces the rebuild even in steady tower mode: the
    // quarantine walk re-bridged level 0 only, and stale tower pointers into
    // a bridged-around node must not survive into traversal.
    rebuild_persistent_towers();
    pm_store(root->index_mode, std::uint64_t{0});
    pm_store(root->checksum, static_cast<std::uint64_t>(root_stamp(*root)));
    persist(&root->index_mode, sizeof(root->index_mode));
  }

  // Fold the session-table scan's verdict into the open-time report (the
  // scan ran concurrently with the rebuilds above; join before reading it).
  if (session_recovery.joinable()) session_recovery.join();
  integrity_.sessions_quarantined += sessions_.quarantined_sessions();
}

std::unique_ptr<UPSkipList> UPSkipList::create(std::vector<pmem::Pool*> pools,
                                               const Options& opts) {
  if (opts.keys_per_node < 1 || opts.max_height < 2 || opts.max_height > 63)
    throw std::invalid_argument("bad UPSkipList options");
  auto list = std::unique_ptr<UPSkipList>(new UPSkipList);
  list->attach(std::move(pools), /*creating=*/true, &opts);
  return list;
}

std::unique_ptr<UPSkipList> UPSkipList::open(std::vector<pmem::Pool*> pools) {
  auto list = std::unique_ptr<UPSkipList>(new UPSkipList);
  list->attach(std::move(pools), /*creating=*/false, nullptr);
  return list;
}

void UPSkipList::init_sentinels() {
  const std::uint64_t epoch = pm_load(*epoch_word_);

  std::uint64_t tail_riv = 0;
  auto* traw = static_cast<char*>(block_alloc_->allocate(0, 0, &tail_riv));
  NodeView tail(traw, &layout_);
  pm_store(tail.meta(), node_meta_word(tail_riv, kTailKey, layout_.max_height));
  pm_store(tail.self_riv(), tail_riv);
  pm_store(tail.epoch_id(), epoch);
  pm_store(tail.key(0), kTailKey);
  for (std::uint32_t i = 0; i < layout_.keys_per_node; ++i)
    pm_store(tail.value(i), kTombstone);
  persist(traw, layout_.node_size());
  tail_riv_ = tail_riv;

  std::uint64_t head_riv = 0;
  auto* hraw = static_cast<char*>(block_alloc_->allocate(0, 0, &head_riv));
  NodeView head(hraw, &layout_);
  // The head's key(0) slot is never written and stays kNullKey.
  pm_store(head.meta(), node_meta_word(head_riv, kNullKey, layout_.max_height));
  pm_store(head.self_riv(), head_riv);
  pm_store(head.epoch_id(), epoch);
  for (std::uint32_t i = 0; i < layout_.keys_per_node; ++i)
    pm_store(head.value(i), kTombstone);
  for (std::uint32_t l = 0; l < layout_.max_height; ++l)
    pm_store(head.next(l), tail_riv);
  persist(hraw, layout_.node_size());
  head_riv_ = head_riv;
}

// ---------------------------------------------------------------------------
// Node construction
// ---------------------------------------------------------------------------

std::uint64_t UPSkipList::make_node(std::uint64_t pred_riv, std::uint64_t key,
                                    std::uint64_t value, std::uint32_t height,
                                    const std::uint64_t* succs) {
  // MakeLinkedObject (Function 4): the allocator logs the attempt and pops a
  // block; we initialize it as a node and persist everything with one flush
  // before it can become reachable (Function 18's single-persist argument).
  //
  // MOD write path (docs/write-path.md): the node is still private, so its
  // lines need no ordering among themselves or against anything else yet —
  // write them back unordered (CLWB without SFENCE) and let the publish
  // fence at the link site order all of them before the link can become
  // durable. Callers that keep mutating the node before publishing (the
  // split copy loop) re-flush; the fence still happens exactly once.
  std::uint64_t riv = 0;
  auto* raw = static_cast<char*>(block_alloc_->allocate(pred_riv, key, &riv));
  NodeView n(raw, &layout_);
  pm_store(n.meta(), node_meta_word(riv, key, height));
  pm_store(n.self_riv(), riv);
  pm_store(n.sorted_count(), std::uint64_t{1});
  pm_store(n.key(0), key);
  pm_store(n.value(0), value);
  for (std::uint32_t i = 1; i < layout_.keys_per_node; ++i)
    pm_store(n.value(i), kTombstone);
  for (std::uint32_t l = 0; l < height; ++l) pm_store(n.next(l), succs[l]);
  if (pmem::mod_writes_enabled()) {
    pmem::flush(raw, layout_.node_size());
    UPSL_CRASH_POINT("core.mod_built");
  } else {
    persist(raw, layout_.node_size());
  }
  return riv;
}

bool UPSkipList::publish_data_link(NodeView pred, std::uint64_t expected,
                                   std::uint64_t node_riv, bool defer_link) {
  // The single ordered step of a MOD insert: one SFENCE retires every
  // unordered writeback of the out-of-place node, then the data-level link
  // CAS makes it reachable. The fence-before-CAS order guarantees the link
  // can never be durable ahead of the node contents it exposes. The link
  // flush itself only gates the *ack* (a lost link just un-inserts an
  // unacknowledged key), so it may ride the ack batch — except in
  // persistent-towers mode for multi-level nodes, where level 0 must be
  // durable before level 1 links (the tower-prefix invariant recovery
  // depends on), so the link persists eagerly there.
  pmem::fence();
  UPSL_CRASH_POINT("core.mod_prepublish");
  if (!pm_cas_value(pred.next(0), expected, node_riv)) return false;
  if (defer_link)
    pmem::ack_persist(&pred.next(0), sizeof(std::uint64_t));
  else
    persist(&pred.next(0), sizeof(std::uint64_t));
  UPSL_CRASH_POINT("core.mod_published");
  return true;
}

// ---------------------------------------------------------------------------
// Traversal (Function 7) and recovery checks (Functions 10-12)
// ---------------------------------------------------------------------------

std::int32_t UPSkipList::scan_internal_keys(NodeView node,
                                            std::uint64_t key) const {
  const std::uint64_t* keys = node.keys();
  std::uint32_t first_unsorted = 1;
  if (opts_.sorted_splits) {
    // §7 optimization: nodes produced by a split are fully sorted up to
    // sorted_count; block-search that prefix (vectorized equality + early
    // exit once the prefix passes the key) and fall back to a scan of the
    // unsorted overflow slots. Unlike the binary search this replaces, the
    // block search stays correct if a kNullKey hole ever appears inside the
    // prefix — nulls compare as "keep going", never as a misordered key.
    const auto sc = static_cast<std::uint32_t>(pm_load(node.sorted_count()));
    if (sc > 1 && sc <= layout_.keys_per_node) {
      const std::int32_t idx = simd::find_sorted_u64(keys, 1, sc, key);
      if (idx >= 0) return idx;
      first_unsorted = sc;
    }
  }
  // Function 8: linear scan (index 0 was compared by the traversal),
  // vectorized — the hottest loop in search/insert/remove (§4.4).
  return simd::find_u64(keys, first_unsorted, layout_.keys_per_node, key);
}

UPSkipList::TraverseResult UPSkipList::traverse(std::uint64_t key,
                                                std::uint64_t* preds,
                                                std::uint64_t* succs,
                                                std::uint32_t recovery_budget) {
  if (index_ != nullptr) return traverse_dram(key, preds, succs, recovery_budget);
  return traverse_pmem(key, preds, succs, recovery_budget);
}

UPSkipList::TraverseResult UPSkipList::traverse_pmem(
    std::uint64_t key, std::uint64_t* preds, std::uint64_t* succs,
    std::uint32_t recovery_budget) {
  std::uint32_t recoveries = 0;
  std::uint64_t upper_visits = 0;
  std::uint64_t level0_visits = 0;
  SpinGuard restart_guard("traverse.restart");
restart:
  restart_guard.tick();
  std::uint64_t pred_riv = head_riv_;
  NodeView pred = view(pred_riv);
  TraverseResult res;

  for (std::int32_t level = static_cast<std::int32_t>(layout_.max_height) - 1;
       level >= 0; --level) {
    std::uint64_t cur_riv = pm_load(pred.next(static_cast<std::uint32_t>(level)));
    prefetch_node(cur_riv, static_cast<std::uint32_t>(level));
    SpinGuard level_guard("traverse.level");
    while (true) {
      level_guard.tick();
      NodeView cur = view(cur_riv);
      if (level > 0)
        ++upper_visits;
      else
        ++level0_visits;
      if (check_for_recovery(static_cast<std::uint32_t>(level), cur_riv, cur,
                             &recoveries, recovery_budget)) {
        goto restart;
      }
      // splitCount must be read before the key so the caller can validate
      // that what it read was not torn by a concurrent split (§4.4).
      const std::uint64_t sc = pm_load(cur.split_count());
      const std::uint64_t k0 = pm_load(cur.key(0));
      if (k0 <= key) {
        res.split_count = sc;
        pred_riv = cur_riv;
        pred = cur;
        cur_riv = pm_load(pred.next(static_cast<std::uint32_t>(level)));
        // Start pulling the successor's lines while this hop finishes; by
        // the time the loop dereferences it, its header is (partly) here.
        prefetch_node(cur_riv, static_cast<std::uint32_t>(level));
      } else {
        break;
      }
    }
    preds[level] = pred_riv;
    succs[level] = cur_riv;
  }

  if (pred_riv != head_riv_) {
    prefetch_keys(pred);
    if (pred.first_key() == key) {
      res.key_index = 0;
      res.found = true;
    } else {
      res.key_index = scan_internal_keys(pred, key);
      res.found = res.key_index >= 0;
    }
  }
  auto& st = pmem::Stats::instance();
  st.index_hops.fetch_add(upper_visits, std::memory_order_relaxed);
  st.pmem_node_visits.fetch_add(upper_visits + level0_visits,
                                std::memory_order_relaxed);
  return res;
}

UPSkipList::TraverseResult UPSkipList::traverse_dram(
    std::uint64_t key, std::uint64_t* preds, std::uint64_t* succs,
    std::uint32_t recovery_budget) {
  std::uint32_t recoveries = 0;
  std::uint64_t dram_hops = 0;
  std::uint64_t pmem_visits = 0;
  SpinGuard restart_guard("traverse_dram.restart");
  TraverseResult res;
restart:
  restart_guard.tick();
  res = TraverseResult{};
  // Index levels live only in DRAM; the persistent pred/succ slots above
  // level 0 are bracketed by the sentinels so shared code (make_node's
  // upper next fillers) stays well-defined.
  for (std::uint32_t l = 1; l < layout_.max_height; ++l) {
    preds[l] = head_riv_;
    succs[l] = tail_riv_;
  }

  const riv::DataHandle hint = index_->seek(key, &dram_hops);
  std::uint64_t pred_riv;
  NodeView pred;
  if (!hint.is_null()) {
    // First keys are immutable and data nodes are never removed, so the
    // hint's first_key <= key holds no matter how stale the registration
    // is. The hint node still needs the epoch check: a durably locked
    // stale node must be claimed and repaired before its keys are usable.
    pred_riv = hint.riv;
    pred = NodeView(static_cast<char*>(hint.ptr), &layout_);
    ++pmem_visits;
    if (check_for_recovery(0, pred_riv, pred, &recoveries, recovery_budget))
      goto restart;
    // splitCount before keys — same torn-read protocol as the PMEM walk.
    res.split_count = pm_load(pred.split_count());
  } else {
    pred_riv = head_riv_;
    pred = view(pred_riv);
  }

  {
    std::uint64_t cur_riv = pm_load(pred.next(0));
    prefetch_node(cur_riv, 0);
    SpinGuard level_guard("traverse_dram.level0");
    while (true) {
      level_guard.tick();
      NodeView cur = view(cur_riv);
      ++pmem_visits;
      if (check_for_recovery(0, cur_riv, cur, &recoveries, recovery_budget))
        goto restart;
      const std::uint64_t sc = pm_load(cur.split_count());
      const std::uint64_t k0 = pm_load(cur.key(0));
      if (k0 <= key) {
        res.split_count = sc;
        pred_riv = cur_riv;
        pred = cur;
        cur_riv = pm_load(pred.next(0));
        prefetch_node(cur_riv, 0);
      } else {
        break;
      }
    }
    preds[0] = pred_riv;
    succs[0] = cur_riv;
  }

  if (pred_riv != head_riv_) {
    prefetch_keys(pred);
    if (pred.first_key() == key) {
      res.key_index = 0;
      res.found = true;
    } else {
      res.key_index = scan_internal_keys(pred, key);
      res.found = res.key_index >= 0;
    }
  }
  auto& st = pmem::Stats::instance();
  st.index_hops.fetch_add(dram_hops, std::memory_order_relaxed);
  st.dram_node_visits.fetch_add(dram_hops, std::memory_order_relaxed);
  st.pmem_node_visits.fetch_add(pmem_visits, std::memory_order_relaxed);
  return res;
}

bool UPSkipList::check_for_recovery(std::uint32_t level, std::uint64_t node_riv,
                                    NodeView node,
                                    std::uint32_t* recoveries_done,
                                    std::uint32_t budget) {
  const std::uint64_t current = pm_load(*epoch_word_);
  const std::uint64_t node_epoch = pm_load(node.epoch_id());
  if (UPSL_LIKELY(node_epoch == current)) return false;

  // Post-recovery throughput throttle (§4.4.1): a traversal repairs at most
  // `budget` incomplete inserts, but an interrupted split (detectable by the
  // durable lock state) must be repaired on sight — its duplicate keys make
  // traversal results unreliable until fixed.
  const bool lock_held = pm_load(node.lock_word()) != 0;
  if (*recoveries_done >= budget && !lock_held) return false;

  // Reset metadata from the dead epoch before claiming (Function 10 line
  // 122): stale reader counts would otherwise block writers forever. Live
  // readers cannot interfere — try_read_lock refuses stale-epoch nodes.
  UPSL_CRASH_POINT("core.recovery_draining");
  node.drain_stale_readers();
  std::uint64_t expected = node_epoch;
  if (!pm_cas(node.epoch_id(), expected, current)) {
    return false;  // another thread claimed this node; it will repair it
  }
  persist(&node.epoch_id(), sizeof(std::uint64_t));
  UPSL_CRASH_POINT("core.recovery_claimed");

  scrub_torn_slots(node);
  check_node_split_recovery(node);
  check_insert_recovery(level, node_riv, node);
  UPSL_CRASH_POINT("core.node_recovered");
  ++*recoveries_done;
  return true;
}

void UPSkipList::scrub_torn_slots(NodeView node) {
  // MOD write path repair: a slot claim defers both its key and value
  // flushes to the ack fence with no ordering between them, so a crash can
  // leave a slot whose value line became durable while the key line
  // reverted to kNullKey. Re-assert the free-slot representation
  // (key == kNullKey ⇒ value == kTombstone) before this epoch can reuse
  // the slot — without this, a later claim of the slot could briefly
  // expose the orphaned value under a new key. Runs once per node, on the
  // epoch-claim transition: pre-crash nodes all carry a stale epoch, and
  // try_read_lock refuses stale nodes, so no claim can race this scrub.
  // Idempotent (crashing mid-scrub just redoes it next epoch).
  pmem::FlushSet fs;
  for (std::uint32_t i = 0; i < layout_.keys_per_node; ++i) {
    if (pm_load(node.key(i)) == kNullKey &&
        pm_load(node.value(i)) != kTombstone) {
      pm_store(node.value(i), kTombstone);
      fs.add(&node.value(i), sizeof(std::uint64_t));
    }
  }
  fs.commit();
}

void UPSkipList::check_node_split_recovery(NodeView node) {
  // Function 11: a durable write-lock from a previous epoch means the node
  // was being split. The new node, if it was linked, is next[0]; complete
  // the erase phase by tombstoning every key that was copied there.
  if (!node.write_locked()) return;
  NodeView succ = view(pm_load(node.next(0)));
  const bool have_succ = !succ.is_tail();
  for (std::uint32_t i = 0; i < layout_.keys_per_node; ++i) {
    // Mid-erase crash point: dying here leaves the node partially scrubbed
    // with the durable write lock still set, so the next epoch re-enters
    // this function and must tolerate already-punched holes (nulled keys
    // re-tombstone idempotently; the full-node persist below had not run,
    // so unflushed holes simply roll back).
    UPSL_CRASH_POINT("core.split_recover_scan");
    const std::uint64_t k = pm_load(node.key(i));
    if (k == kNullKey) {
      pm_store(node.value(i), kTombstone);
      continue;
    }
    if (!have_succ) continue;
    for (std::uint32_t j = 0; j < layout_.keys_per_node; ++j) {
      if (pm_load(succ.key(j)) == k) {
        pm_store(node.key(i), kNullKey);
        pm_store(node.value(i), kTombstone);
        break;
      }
    }
  }
  // The erase punched unknown holes; drop the sorted-prefix claim.
  pm_store(node.sorted_count(), std::uint64_t{0});
  persist(node.raw(), layout_.node_size());
  UPSL_CRASH_POINT("core.split_recovered");
  node.write_unlock();
  persist(&node.lock_word(), sizeof(std::uint64_t));
}

void UPSkipList::check_insert_recovery(std::uint32_t level,
                                       std::uint64_t node_riv, NodeView node) {
  // Function 12: Herlihy-style inserts link bottom-up and UPSkipList
  // persists each level before the next, so a node's linked levels are
  // always a prefix [0, top]. Encountering an old-epoch node first at
  // `level` means `level` is its topmost linked level; if its tower should
  // be taller, the insert was interrupted — finish it (§4.5.2).
  const std::uint32_t height = node.height();
  if (index_ != nullptr) {
    // DRAM mode: the tower lives in the volatile index, so re-registration
    // is the entire repair (idempotent — a rebuild-registered node is
    // simply found and left alone).
    if (height >= 2) {
      register_in_index(node_riv);
      UPSL_CRASH_POINT("core.insert_recovered");
    }
    return;
  }
  if (level + 1 >= height) return;
  std::uint64_t preds[64];
  std::uint64_t succs[64];
  // Fresh traversal for the node's own key: the caller's pred/succ arrays
  // describe the search key's path, which may bracket a different position.
  traverse(node.first_key(), preds, succs, /*recovery_budget=*/0);
  link_higher_levels(preds, succs, node_riv, level + 1, height);
  UPSL_CRASH_POINT("core.insert_recovered");
}

// ---------------------------------------------------------------------------
// Linking (Functions 17-19)
// ---------------------------------------------------------------------------

void UPSkipList::populate_levels(const std::uint64_t* succs, NodeView node,
                                 std::uint32_t start_level,
                                 std::uint32_t end_level) {
  // The refreshed pointers only need to be durable before the node becomes
  // reachable at these levels (the link CAS in the caller), so they can all
  // ride one fence. Adjacent levels share cache lines (8 next-words per
  // line), which the flush set dedupes as well.
  pmem::FlushSet fs;
  for (std::uint32_t l = start_level; l < end_level; ++l) {
    pm_store(node.next(l), succs[l]);
    fs.add(&node.next(l), sizeof(std::uint64_t));
  }
  fs.commit();
}

void UPSkipList::link_higher_levels(std::uint64_t* preds, std::uint64_t* succs,
                                    std::uint64_t node_riv,
                                    std::uint32_t start_level,
                                    std::uint32_t height) {
  NodeView node = view(node_riv);
  const std::uint64_t node_key = node.first_key();
  for (std::uint32_t level = start_level; level < height; ++level) {
    SpinGuard guard("link_higher_levels");
    while (true) {
      guard.tick();
      // If the traversal reached the node itself at this level, the node is
      // already linked here — possible when recovery is driven from below
      // the tower's true top (e.g. by a scan claiming at level 0). Linking
      // "again" would CAS the node's own next pointer into a self-loop.
      if (preds[level] == node_riv) break;
      NodeView pred = view(preds[level]);
      if (pm_load(pred.next(level)) == node_riv) break;  // already linked
      const std::uint64_t expected = pm_load(node.next(level));
      if (pm_cas_value(pred.next(level), expected, node_riv)) {
        // Changes to next pointers at a level must be persisted before
        // changes at higher levels (Function 17 line 233) — otherwise a
        // crash could leave a non-prefix tower, which recovery relies on
        // never happening.
        persist(&pred.next(level), sizeof(std::uint64_t));
        UPSL_CRASH_POINT("core.linked_level");
        break;
      }
      // The neighbourhood changed: recompute it and refresh this node's
      // remaining next pointers (Function 17 lines 235-237).
      traverse(node_key, preds, succs, /*recovery_budget=*/0);
      populate_levels(succs, node, level, height);
    }
  }
}

// ---------------------------------------------------------------------------
// DRAM search layer (docs/dram-index.md)
// ---------------------------------------------------------------------------

void UPSkipList::register_in_index(std::uint64_t node_riv) {
  // Publish a data node into the volatile index with ordinary CASes —
  // nothing here is flushed or fenced. A thread dying between the level-0
  // link and this call costs hops until the next rebuild, never
  // correctness (the level-0 walk finds the node regardless).
  // Sentinels are implicit (head = the seek miss, tail = null successor);
  // recovery claims them like any stale node, so filter them here.
  if (node_riv == head_riv_ || node_riv == tail_riv_) return;
  NodeView n = view(node_riv);
  const std::uint32_t h = n.height();
  if (h < 2) return;
  index_->insert(n.first_key(), node_riv, n.raw(), h);
}

std::uint64_t UPSkipList::rebuild_dram_index(unsigned workers) {
  if (index_ == nullptr) return 0;
  if (workers == 0) workers = default_rebuild_workers();
  const auto t0 = std::chrono::steady_clock::now();
  // The sequential part: snapshot (first_key, riv, address, height) of
  // every indexable data node, in level-0 (= ascending key) order. Heights
  // were persisted by make_node before the node could be linked, so they
  // are correct even right after a crash.
  std::vector<DramIndex::Entry> entries;
  std::uint64_t cur = pm_load(view(head_riv_).next(0));
  while (true) {
    NodeView v = view(cur);
    if (v.is_tail()) break;
    const std::uint32_t h = v.height();
    if (h >= 2) entries.push_back({v.first_key(), cur, v.raw(), h});
    cur = pm_load(v.next(0));
  }
  index_->rebuild(entries, workers);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  last_rebuild_ns_ = ns;
  auto& st = pmem::Stats::instance();
  st.index_rebuilds.fetch_add(1, std::memory_order_relaxed);
  st.index_rebuild_ns.fetch_add(ns, std::memory_order_relaxed);
  return ns;
}

void UPSkipList::rebuild_persistent_towers() {
  // Mode switch DRAM -> persistent towers: the PMEM next pointers above
  // level 0 were not maintained while the store ran with the DRAM index,
  // so rewrite every one of them from the data level. The spine holds, per
  // level, the last node written at that level; a node's own upper next
  // pointers are filled in when its level successor arrives (or by the
  // tail fix-up). index_mode flips to 0 only after this completes, so a
  // crash anywhere in here simply redoes the full rewrite.
  std::vector<std::uint64_t> spine(layout_.max_height, head_riv_);
  std::uint64_t cur = pm_load(view(head_riv_).next(0));
  while (true) {
    NodeView v = view(cur);
    if (v.is_tail()) break;
    const std::uint32_t h = std::min(v.height(), layout_.max_height);
    if (h >= 2) {
      pmem::FlushSet fs;
      for (std::uint32_t l = 1; l < h; ++l) {
        NodeView sp = view(spine[l]);
        pm_store(sp.next(l), cur);
        fs.add(&sp.next(l), sizeof(std::uint64_t));
        spine[l] = cur;
      }
      fs.commit();
      UPSL_CRASH_POINT("core.tower_rebuild");
    }
    cur = pm_load(v.next(0));
  }
  pmem::FlushSet fs;
  for (std::uint32_t l = 1; l < layout_.max_height; ++l) {
    NodeView sp = view(spine[l]);
    pm_store(sp.next(l), tail_riv_);
    fs.add(&sp.next(l), sizeof(std::uint64_t));
  }
  fs.commit();
}

// ---------------------------------------------------------------------------
// Reads (Functions 8-9)
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> UPSkipList::search(std::uint64_t key) {
  if (key == kNullKey || key == kTailKey)
    throw std::invalid_argument("key out of user range");
  std::uint64_t preds[64];
  std::uint64_t succs[64];
  SpinGuard guard("search");
  while (true) {
    guard.tick();
    const TraverseResult res =
        traverse(key, preds, succs, opts_.recovery_budget);
    NodeView node = view(preds[0]);
    if (!res.found) {
      if (preds[0] == head_riv_) return std::nullopt;
      // Validate the miss: a concurrent split may have moved the key to the
      // successor after we read next[0] but before we scanned the keys.
      // (The thesis' pseudocode validates only hits; misses need the same
      // splitCount check for strict linearizability.)
      if (node.write_locked()) continue;
      if (pm_load(node.split_count()) != res.split_count) continue;
      return std::nullopt;
    }
    if (node.write_locked()) continue;  // value unreliable mid-split
    const std::uint64_t value =
        pm_load(node.value(static_cast<std::uint32_t>(res.key_index)));
    if (pm_load(node.split_count()) != res.split_count) continue;
    if (value == kTombstone) return std::nullopt;
    // Reader-forced persistence: the insert's linearization point is the
    // persistence of the value; a reader returning it must make sure it is
    // durable first, or a crash could erase a value that was already
    // observed (§4.5).
    persist(&node.value(static_cast<std::uint32_t>(res.key_index)),
            sizeof(std::uint64_t));
    return value;
  }
}

// ---------------------------------------------------------------------------
// Writes (Functions 13-16, 20)
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> UPSkipList::update_value(NodeView node,
                                                      std::int32_t idx,
                                                      std::uint64_t value) {
  // Function 14: CAS until success; total order over updates of this key.
  auto& word = node.value(static_cast<std::uint32_t>(idx));
  SpinGuard guard("update_value");
  while (true) {
    guard.tick();
    std::uint64_t old = pm_load(word);
    if (pm_cas(word, old, value)) {
      pmem::ack_persist(&word, sizeof(word));
      UPSL_CRASH_POINT("core.updated_value");
      if (old == kTombstone) return std::nullopt;
      return old;
    }
  }
}

std::optional<std::uint64_t> UPSkipList::insert(std::uint64_t key,
                                                std::uint64_t value) {
  if (key == kNullKey || key == kTailKey)
    throw std::invalid_argument("key out of user range");
  if (value == kTombstone)
    throw std::invalid_argument("value reserved for tombstones");
  std::uint64_t preds[64];
  std::uint64_t succs[64];
  SpinGuard guard("insert");
  while (true) {
    guard.tick();
    const TraverseResult res = traverse(key, preds, succs, ~0u);
    NodeView pred = view(preds[0]);
    const std::uint64_t current = pm_load(*epoch_word_);

    if (res.found) {
      // Update path: the read lock excludes concurrent splits; the split
      // counter check rejects a split completed since the traversal.
      if (!pred.try_read_lock(current)) continue;
      if (pm_load(pred.split_count()) != res.split_count) {
        pred.read_unlock();
        continue;
      }
      auto old = update_value(pred, res.key_index, value);
      pred.read_unlock();
      return old;
    }

    if (preds[0] == head_riv_) {
      if (create_head_successor(key, value, preds, succs)) return std::nullopt;
      continue;
    }

    std::optional<std::uint64_t> old;
    switch (insert_into_existing(key, value, preds, res.split_count, &old)) {
      case InsertStatus::kRestart:
        continue;
      case InsertStatus::kNeedSplit:
        if (split_node(key, value, preds, succs, &old) == InsertStatus::kDone)
          return old;
        continue;
      case InsertStatus::kDone:
        return old;
    }
  }
}

bool UPSkipList::create_head_successor(std::uint64_t key, std::uint64_t value,
                                       std::uint64_t* preds,
                                       std::uint64_t* succs) {
  // Function 15: the head stores no keys, so a key smaller than every
  // existing first key gets a brand-new node right after the head.
  const auto height = static_cast<std::uint32_t>(
      thread_rng().geometric_height(static_cast<int>(layout_.max_height)));
  const std::uint64_t succ = succs[0];
  const std::uint64_t node_riv = make_node(head_riv_, key, value, height, succs);
  UPSL_CRASH_POINT("core.head_succ_made");
  NodeView head = view(head_riv_);
  if (pmem::mod_writes_enabled()) {
    const bool defer_link = index_ != nullptr || height == 1;
    if (!publish_data_link(head, succ, node_riv, defer_link)) {
      block_alloc_->deallocate(node_riv);
      return false;
    }
  } else {
    if (!pm_cas_value(head.next(0), succ, node_riv)) {
      block_alloc_->deallocate(node_riv);
      return false;
    }
    persist(&head.next(0), sizeof(std::uint64_t));
  }
  UPSL_CRASH_POINT("core.head_succ_linked");
  if (index_ != nullptr)
    register_in_index(node_riv);
  else
    link_higher_levels(preds, succs, node_riv, 1, height);
  return true;
}

UPSkipList::InsertStatus UPSkipList::insert_into_existing(
    std::uint64_t key, std::uint64_t value, std::uint64_t* preds,
    std::uint64_t split_count, std::optional<std::uint64_t>* old_out) {
  // Function 16: claim the first empty slot with a key CAS, then publish the
  // value. Claiming without rescanning for duplicates is safe because the
  // traversal scanned all keys and every concurrent inserter of this key
  // fights for the same first empty slot (§4.5).
  NodeView pred = view(preds[0]);
  const std::uint64_t current = pm_load(*epoch_word_);
  if (!pred.try_read_lock(current)) return InsertStatus::kRestart;
  if (pm_load(pred.split_count()) != split_count) {
    pred.read_unlock();
    return InsertStatus::kRestart;
  }
  for (std::uint32_t i = 0; i < layout_.keys_per_node; ++i) {
    std::uint64_t k = pm_load(pred.key(i));
    if (k == kNullKey) {
      if (pm_cas_value(pred.key(i), kNullKey, key)) {
        // The key and value lines only gate the ack, with no ordering
        // between them: a crash can leave any subset durable, and the one
        // torn combination (durable value under a reverted null key) is
        // scrubbed back to a free slot at claim time (scrub_torn_slots).
        pmem::ack_persist(&pred.key(i), sizeof(std::uint64_t));
        UPSL_CRASH_POINT("core.slot_claimed");
        *old_out = update_value(pred, static_cast<std::int32_t>(i), value);
        pred.read_unlock();
        return InsertStatus::kDone;
      }
      k = pm_load(pred.key(i));  // lost the slot race; did they insert `key`?
    }
    if (k == key) {
      *old_out = update_value(pred, static_cast<std::int32_t>(i), value);
      pred.read_unlock();
      return InsertStatus::kDone;
    }
  }
  pred.read_unlock();
  return InsertStatus::kNeedSplit;
}

UPSkipList::InsertStatus UPSkipList::split_node(
    std::uint64_t key, std::uint64_t value, std::uint64_t* preds,
    std::uint64_t* succs, std::optional<std::uint64_t>* old_out) {
  // Function 20. The write lock only needs to be held while keys are
  // transferred and erased; the tower of the new node is built after the
  // lock is released (§4.2).
  NodeView pred = view(preds[0]);
  const std::uint64_t current = pm_load(*epoch_word_);
  if (!pred.try_write_lock(current))
    return InsertStatus::kRestart;  // someone else is progressing
  // Make the locked state durable before any destructive step: recovery
  // detects an interrupted split by this bit (Function 11).
  persist(&pred.lock_word(), sizeof(std::uint64_t));
  UPSL_CRASH_POINT("core.split_locked");

  const std::uint32_t K = layout_.keys_per_node;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  pairs.reserve(K);
  for (std::uint32_t i = 0; i < K; ++i) {
    const std::uint64_t k = pm_load(pred.key(i));
    if (k != kNullKey) pairs.emplace_back(k, pm_load(pred.value(i)));
  }
  if (pairs.size() < 2) {
    // A full single-key node (keys_per_node == 1) cannot be halved: insert
    // the new key as its own node right after pred instead — exactly the
    // classic Herlihy insert this configuration degenerates to (Fig 5.3).
    const auto height = static_cast<std::uint32_t>(
        thread_rng().geometric_height(static_cast<int>(layout_.max_height)));
    std::uint64_t node_succs[64];
    for (std::uint32_t l = 0; l < height; ++l) node_succs[l] = succs[l];
    node_succs[0] = pm_load(pred.next(0));
    // The neighbourhood may have changed between the traversal and taking
    // the lock (another single-key "split" can have inserted a node after
    // pred, possibly with this very key): re-validate under the lock.
    if (key >= view(node_succs[0]).first_key()) {
      pred.write_unlock();
      persist(&pred.lock_word(), sizeof(std::uint64_t));
      return InsertStatus::kRestart;
    }
    const std::uint64_t new_riv =
        make_node(preds[0], key, value, height, node_succs);
    if (pmem::mod_writes_enabled()) {
      const bool defer_link = index_ != nullptr || height == 1;
      if (!publish_data_link(pred, node_succs[0], new_riv, defer_link)) {
        block_alloc_->deallocate(new_riv);
        pred.write_unlock();
        persist(&pred.lock_word(), sizeof(std::uint64_t));
        return InsertStatus::kRestart;
      }
    } else {
      if (!pm_cas_value(pred.next(0), node_succs[0], new_riv)) {
        block_alloc_->deallocate(new_riv);
        pred.write_unlock();
        persist(&pred.lock_word(), sizeof(std::uint64_t));
        return InsertStatus::kRestart;
      }
      persist(&pred.next(0), sizeof(std::uint64_t));
    }
    pred.write_unlock();
    // The unlock flush only gates the ack: a crash that loses it re-runs
    // split recovery on pred, which finds nothing to erase (no key moved)
    // and unlocks again — idempotent.
    pmem::ack_persist(&pred.lock_word(), sizeof(std::uint64_t));
    if (index_ != nullptr) {
      register_in_index(new_riv);
    } else {
      traverse(key, preds, succs, ~0u);
      link_higher_levels(preds, succs, new_riv, 1, height);
    }
    *old_out = std::nullopt;
    return InsertStatus::kDone;
  }
  std::sort(pairs.begin(), pairs.end());
  const std::size_t mid = pairs.size() / 2;

  const auto height = static_cast<std::uint32_t>(
      thread_rng().geometric_height(static_cast<int>(layout_.max_height)));
  // The new node's successors: every recorded successor of the traversal has
  // a first key greater than every key in pred, so the arrays are valid for
  // the median key as well (see DESIGN.md).
  std::uint64_t node_succs[64];
  for (std::uint32_t l = 0; l < height; ++l) node_succs[l] = succs[l];
  node_succs[0] = pm_load(pred.next(0));

  const std::uint64_t new_riv =
      make_node(preds[0], pairs[mid].first, pairs[mid].second, height,
                node_succs);
  NodeView nn = view(new_riv);
  for (std::size_t i = mid; i < pairs.size(); ++i) {
    pm_store(nn.key(static_cast<std::uint32_t>(i - mid)), pairs[i].first);
    pm_store(nn.value(static_cast<std::uint32_t>(i - mid)), pairs[i].second);
  }
  // The copied half is sorted and hole-free, so the run normally equals
  // pairs.size() - mid; computing it from the slots clamps sorted_count to
  // the populated prefix no matter what the copy produced.
  pm_store(nn.sorted_count(),
           static_cast<std::uint64_t>(sorted_run_length(nn, K)));
  if (pmem::mod_writes_enabled()) {
    // Out-of-place build, second pass: the copied upper half and the
    // sorted_count landed after make_node's writeback, so re-flush the
    // whole node — still unordered; the publish fence below is the single
    // ordering point for everything the new node contains.
    pmem::flush(nn.raw(), layout_.node_size());
    UPSL_CRASH_POINT("core.mod_built");
  } else {
    persist(nn.raw(), layout_.node_size());
  }
  UPSL_CRASH_POINT("core.split_node_made");

  const std::uint64_t expected_next = pm_load(nn.next(0));
  if (pmem::mod_writes_enabled()) {
    pmem::fence();  // publish: new node fully durable before it is linked
    UPSL_CRASH_POINT("core.mod_prepublish");
  }
  if (!pm_cas_value(pred.next(0), expected_next, new_riv)) {
    // Cannot happen while we hold the split lock and nodes are never
    // removed, but stay faithful to the pseudocode's guard (line 258).
    block_alloc_->deallocate(new_riv);
    pred.write_unlock();
    persist(&pred.lock_word(), sizeof(std::uint64_t));
    return InsertStatus::kRestart;
  }
  // The link and the split-counter bump commit under one fence: readers are
  // already fended off by the durable write lock, and the only extra crash
  // state the batching admits — a durable counter bump with a lost link —
  // is benign (a spuriously bumped counter can only cause a retry, and
  // split recovery keys off the lock word, not the counter).
  {
    pmem::FlushSet fs;
    fs.add(&pred.next(0), sizeof(std::uint64_t));
    pm_store(pred.split_count(), pm_load(pred.split_count()) + 1);
    fs.add(&pred.split_count(), sizeof(std::uint64_t));
    fs.commit();
  }
  UPSL_CRASH_POINT("core.split_linked");

  // Erase the moved upper half from the original node.
  for (std::uint32_t i = 0; i < K; ++i) {
    const std::uint64_t k = pm_load(pred.key(i));
    if (k >= pairs[mid].first && k != kNullKey) {
      pm_store(pred.key(i), kNullKey);
      pm_store(pred.value(i), kTombstone);
    }
  }
  // The surviving sorted prefix is whatever leading run stayed non-null and
  // ascending (erasure punched holes into the old prefix).
  pm_store(pred.sorted_count(),
           static_cast<std::uint64_t>(sorted_run_length(pred, K)));
  persist(pred.raw(), layout_.node_size());
  UPSL_CRASH_POINT("core.split_erased");
  pred.write_unlock();
  // Deferrable like the single-key branch: losing the unlock flush re-runs
  // the (idempotent) erase scan on recovery; every moved key is already
  // durable in the new node, so nothing acked can be lost.
  pmem::ack_persist(&pred.lock_word(), sizeof(std::uint64_t));

  // Build the new node's tower outside the lock (Function 20 lines 269-270).
  if (index_ != nullptr) {
    register_in_index(new_riv);
  } else {
    traverse(pm_load(nn.key(0)), preds, succs, ~0u);
    link_higher_levels(preds, succs, new_riv, 1, height);
  }
  // The calling Insert retries and lands in the old or the new node.
  return InsertStatus::kRestart;
}

std::optional<std::uint64_t> UPSkipList::remove(std::uint64_t key) {
  // §4.6: removals tombstone the value, behaving as updates.
  if (key == kNullKey || key == kTailKey)
    throw std::invalid_argument("key out of user range");
  std::uint64_t preds[64];
  std::uint64_t succs[64];
  SpinGuard guard("remove");
  while (true) {
    guard.tick();
    const TraverseResult res = traverse(key, preds, succs, ~0u);
    NodeView node = view(preds[0]);
    if (!res.found) {
      if (preds[0] == head_riv_) return std::nullopt;
      if (node.write_locked()) continue;
      if (pm_load(node.split_count()) != res.split_count) continue;
      return std::nullopt;
    }
    const std::uint64_t current = pm_load(*epoch_word_);
    if (!node.try_read_lock(current)) continue;
    if (pm_load(node.split_count()) != res.split_count) {
      node.read_unlock();
      continue;
    }
    auto& word = node.value(static_cast<std::uint32_t>(res.key_index));
    std::optional<std::uint64_t> removed;
    while (true) {
      std::uint64_t old = pm_load(word);
      if (old == kTombstone) break;  // already absent
      if (pm_cas(word, old, kTombstone)) {
        UPSL_CRASH_POINT("core.removed_cas");
        pmem::ack_persist(&word, sizeof(word));
        UPSL_CRASH_POINT("core.removed_value");
        removed = old;
        break;
      }
    }
    node.read_unlock();
    return removed;
  }
}

// ---------------------------------------------------------------------------
// Detectable mutations (docs/detectability.md)
// ---------------------------------------------------------------------------

namespace {

/// Shared dedup preamble: true if the outcome is already decided by the
/// session table (replayed seq, or detectability unavailable → run plain).
bool detect_dedup(detect::SessionTable& sessions, std::int32_t slot,
                  std::uint64_t seq, bool* plain,
                  UPSkipList::DetectOutcome* out) {
  using State = detect::ResolveResult::State;
  *plain = !sessions.valid() || !detect::detect_enabled() || slot < 0;
  if (*plain) return false;
  const detect::ResolveResult r =
      sessions.lookup(static_cast<std::uint32_t>(slot), seq);
  if (r.state == State::kApplied) {
    out->duplicate = true;
    if (r.has_previous != 0) out->previous = r.result;
    return true;
  }
  if (r.state == State::kAppliedUnknown) {
    out->duplicate = true;
    out->result_known = false;
    return true;
  }
  return false;
}

}  // namespace

UPSkipList::DetectOutcome UPSkipList::insert_detect(std::uint64_t key,
                                                    std::uint64_t value,
                                                    std::int32_t slot,
                                                    std::uint64_t seq) {
  DetectOutcome out;
  bool plain = false;
  if (detect_dedup(sessions_, slot, seq, &plain, &out)) return out;
  out.previous = insert(key, value);
  if (plain) return out;
  // The record's lines join the ambient AckBatch: slot and mutation become
  // durable under the same ack fence / group-commit ticket.
  sessions_.record(static_cast<std::uint32_t>(slot), seq,
                   out.previous.has_value() ? 1 : 0,
                   out.previous.value_or(0));
  return out;
}

UPSkipList::DetectOutcome UPSkipList::remove_detect(std::uint64_t key,
                                                    std::int32_t slot,
                                                    std::uint64_t seq) {
  DetectOutcome out;
  bool plain = false;
  if (detect_dedup(sessions_, slot, seq, &plain, &out)) return out;
  out.previous = remove(key);
  if (plain) return out;
  sessions_.record(static_cast<std::uint32_t>(slot), seq,
                   out.previous.has_value() ? 1 : 0,
                   out.previous.value_or(0));
  return out;
}

// ---------------------------------------------------------------------------
// Scans and diagnostics
// ---------------------------------------------------------------------------

std::size_t UPSkipList::scan(std::uint64_t lo, std::uint64_t hi,
                             std::vector<ScanEntry>& out) {
  std::uint64_t resume = 0;
  return scan_chunk(lo, hi, 0, out, &resume);
}

std::size_t UPSkipList::scan_chunk(std::uint64_t lo, std::uint64_t hi,
                                   std::size_t limit,
                                   std::vector<ScanEntry>& out,
                                   std::uint64_t* resume_key) {
  *resume_key = 0;
  if (lo > hi) return 0;
  if (lo == kNullKey) lo = 1;                // kNullKey is never a user key
  if (hi >= kTailKey) hi = kTailKey - 1;     // keeps hi + 1 overflow-free
  if (limit == 0) limit = std::numeric_limits<std::size_t>::max();
  std::uint64_t preds[64];
  std::uint64_t succs[64];
  traverse(lo, preds, succs, opts_.recovery_budget);
  std::uint64_t cur_riv = preds[0];
  const std::size_t before = out.size();

  // One kernel call covers up to 1024 keys (16 mask words on the stack);
  // larger nodes are filtered in blocks. No heap allocation on this path.
  constexpr std::uint32_t kBlock = 1024;
  std::uint64_t mask[kBlock / 64];
  const std::uint32_t kpn = layout_.keys_per_node;
  std::uint64_t nodes_visited = 0;
  std::uint64_t kernel_calls = 0;

  SpinGuard walk_guard("scan.walk");
  while (cur_riv != 0) {
    walk_guard.tick();
    NodeView node = view(cur_riv);
    if (node.is_tail()) break;
    if (node.first_key() > hi) break;  // rest of the level is beyond hi
    std::uint64_t next_riv = 0;
    if (cur_riv == head_riv_) {
      next_riv = pm_load(node.next(0));
    } else {
      ++nodes_visited;
      const std::size_t node_start = out.size();
      // Per-node atomic filter, validated by the split counter: the kernel
      // reads the key slots with plain loads, and any concurrent split
      // bumps the counter and sends us around again.
      SpinGuard guard("scan.filter");
      while (true) {
        guard.tick();
        out.resize(node_start);  // discard a half-filtered failed attempt
        const std::uint64_t sc = pm_load(node.split_count());
        if (node.write_locked()) {
          // A durably locked node from a dead epoch never unlocks by
          // itself — claim and repair it (a live split unlocks shortly).
          std::uint32_t recoveries = 0;
          check_for_recovery(0, cur_riv, node, &recoveries, ~0u);
          continue;
        }
        next_riv = pm_load(node.next(0));
        // Overlap the successor's key-line fetches with this node's filter.
        std::uint64_t next_first = kTailKey;
        if (next_riv != 0) {
          NodeView next = view(next_riv);
          prefetch_keys(next);
          if (!next.is_tail()) next_first = next.first_key();
        }
        // Fully-inside fast path: internal keys lie in (first_key,
        // next.first_key), so when those bounds already sit inside [lo, hi]
        // the kernel only has to reject kNullKey holes — no per-key range
        // compare against the caller's bounds at all.
        std::uint64_t flo = lo;
        std::uint64_t fhi = hi;
        if (node.first_key() >= lo && next_first <= hi + 1) {
          flo = 1;
          fhi = kTailKey;
        }
        const std::uint64_t* keys = node.keys();
        for (std::uint32_t base = 0; base < kpn; base += kBlock) {
          const std::uint32_t blk = std::min(kBlock, kpn - base);
          simd::range_mask_u64(keys + base, blk, flo, fhi, mask);
          ++kernel_calls;
          for (std::uint32_t w = 0; w < (blk + 63) / 64; ++w) {
            std::uint64_t bits = mask[w];
            while (bits != 0) {
              const std::uint32_t idx =
                  base + w * 64 +
                  static_cast<std::uint32_t>(__builtin_ctzll(bits));
              bits &= bits - 1;
              // Under an unchanged split counter a claimed slot's key is
              // immutable, so this re-read matches what the kernel saw.
              const std::uint64_t k = pm_load(node.key(idx));
              const std::uint64_t v = pm_load(node.value(idx));
              if (v != kTombstone) out.push_back({k, v});
            }
          }
        }
        if (pm_load(node.split_count()) == sc) break;
      }
      if (out.size() - before >= limit) {
        // Stop at a node boundary: every key below next_first is covered,
        // so the continuation picks up exactly there.
        if (next_riv != 0) {
          NodeView next = view(next_riv);
          if (!next.is_tail() && next.first_key() <= hi)
            *resume_key = next.first_key();
        }
        cur_riv = 0;
        continue;
      }
    }
    cur_riv = next_riv;
  }

  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
            [](const ScanEntry& a, const ScanEntry& b) { return a.key < b.key; });
  // A key that migrated right during the walk can be collected twice; keep
  // the first occurrence.
  auto* first = out.data() + before;
  const auto n = static_cast<std::size_t>(out.size() - before);
  std::size_t w = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (w > 0 && first[r].key == first[w - 1].key) continue;
    first[w++] = first[r];
  }
  out.resize(before + w);

  auto& st = pmem::Stats::instance();
  st.scan_nodes_visited.fetch_add(nodes_visited, std::memory_order_relaxed);
  st.simd_scan_filters.fetch_add(kernel_calls, std::memory_order_relaxed);
  st.scan_entries_returned.fetch_add(w, std::memory_order_relaxed);
  st.scan_chunks.fetch_add(1, std::memory_order_relaxed);
  return w;
}

std::size_t UPSkipList::count_keys() {
  std::vector<ScanEntry> entries;
  return scan(1, kTailKey - 1, entries);
}

void UPSkipList::check_invariants() {
  // Bottom level: strictly increasing first keys, internal keys bounded by
  // (first_key, successor.first_key), tombstone values on every null slot.
  NodeView node = view(head_riv_);
  std::uint64_t cur = pm_load(node.next(0));
  std::uint64_t prev_first = 0;
  std::size_t bottom_count = 0;
  while (true) {
    NodeView v = view(cur);
    if (v.is_tail()) break;
    ++bottom_count;
    const std::uint64_t first = v.first_key();
    if (first <= prev_first)
      throw std::logic_error("bottom level not strictly sorted");
    prev_first = first;
    NodeView succ = view(pm_load(v.next(0)));
    const std::uint64_t bound = succ.first_key();
    for (std::uint32_t i = 0; i < layout_.keys_per_node; ++i) {
      const std::uint64_t k = pm_load(v.key(i));
      if (k == kNullKey) {
        // A non-tombstone value under a null key is a torn MOD slot claim:
        // legal only on a node the current epoch has not claimed yet
        // (scrub_torn_slots repairs it at claim time).
        if (pm_load(v.value(i)) != kTombstone &&
            pm_load(v.epoch_id()) == pm_load(*epoch_word_))
          throw std::logic_error("null key slot without tombstone value");
        continue;
      }
      if (k < first || k >= bound)
        throw std::logic_error("internal key outside node bounds");
    }
    // Sorted-prefix invariant (what the block search in scan_internal_keys
    // relies on for its early exit): slots [0, sorted_count) are populated
    // and strictly ascending.
    const std::uint64_t sc = pm_load(v.sorted_count());
    if (sc > layout_.keys_per_node)
      throw std::logic_error("sorted_count exceeds keys_per_node");
    std::uint64_t prev_sorted = 0;
    for (std::uint64_t i = 0; i < sc; ++i) {
      const std::uint64_t k = pm_load(v.key(static_cast<std::uint32_t>(i)));
      if (k == kNullKey)
        throw std::logic_error("null key inside sorted prefix");
      if (i > 0 && k <= prev_sorted)
        throw std::logic_error("sorted prefix not strictly ascending");
      prev_sorted = k;
    }
    if (v.height() == 0 || v.height() > layout_.max_height)
      throw std::logic_error("node height out of range");
    cur = pm_load(v.next(0));
  }
  if (index_ != nullptr) {
    // DRAM mode: the PMEM towers are stale by design — validate the
    // volatile index against the data level instead. On a quiesced store
    // every height >= 2 node is registered exactly once with matching
    // identity, and the index's own levels are properly nested.
    index_->check_invariants();
    std::vector<DramIndex::Entry> expect;
    std::uint64_t c = pm_load(view(head_riv_).next(0));
    while (true) {
      NodeView v = view(c);
      if (v.is_tail()) break;
      if (v.height() >= 2) expect.push_back({v.first_key(), c, v.raw(), v.height()});
      c = pm_load(v.next(0));
    }
    std::vector<DramIndex::Entry> got;
    index_->for_each([&](const DramIndex::Entry& e) { got.push_back(e); });
    if (got.size() != expect.size())
      throw std::logic_error(
          "dram index entries (" + std::to_string(got.size()) +
          ") != indexable data nodes (" + std::to_string(expect.size()) + ")");
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].key != expect[i].key || got[i].riv != expect[i].riv)
        throw std::logic_error("dram index entry mismatches data level");
      if (got[i].height != std::min(expect[i].height, layout_.max_height))
        throw std::logic_error("dram index height mismatches node meta");
    }
    return;
  }
  // Every higher level must be a sorted sub-sequence of the level below.
  for (std::uint32_t l = 1; l < layout_.max_height; ++l) {
    std::uint64_t upper = pm_load(view(head_riv_).next(l));
    std::uint64_t lower = pm_load(view(head_riv_).next(l - 1));
    while (upper != tail_riv_) {
      while (lower != tail_riv_ && lower != upper)
        lower = pm_load(view(lower).next(l - 1));
      if (lower == tail_riv_)
        throw std::logic_error("upper level node missing from lower level");
      if (view(upper).height() <= l)
        throw std::logic_error("node linked above its height");
      upper = pm_load(view(upper).next(l));
    }
  }
}

std::size_t UPSkipList::count_nodes() {
  std::size_t n = 0;
  std::uint64_t cur = pm_load(view(head_riv_).next(0));
  while (true) {
    NodeView v = view(cur);
    if (v.is_tail()) return n;
    ++n;
    cur = pm_load(v.next(0));
  }
}

bool UPSkipList::tower_complete(std::uint64_t key) {
  std::uint64_t preds[64];
  std::uint64_t succs[64];
  const TraverseResult res = traverse(key, preds, succs, 0);
  if (!res.found) return false;
  const std::uint64_t node_riv = preds[0];
  NodeView node = view(node_riv);
  if (index_ != nullptr) {
    // Level 0 is proven by the traversal having found the node; the rest of
    // the tower is the DRAM registration.
    if (node.height() < 2) return true;
    return index_->complete(node.first_key(), node.height() - 1);
  }
  for (std::uint32_t l = 0; l < node.height(); ++l) {
    std::uint64_t cur = pm_load(view(head_riv_).next(l));
    bool found = false;
    while (cur != tail_riv_) {
      if (cur == node_riv) {
        found = true;
        break;
      }
      cur = pm_load(view(cur).next(l));
    }
    if (!found) return false;
  }
  return true;
}

void UPSkipList::check_no_leaks() {
  std::size_t total_blocks = 0;
  for (auto& ca : chunk_allocs_) {
    for (std::uint32_t c = 0; c < ca->header().max_chunks; ++c)
      if (ca->dir_entry(c).state == alloc::ChunkState::kAllocated)
        total_blocks += ca->chunk_data_size() / block_alloc_->block_size();
  }
  const std::size_t free_blocks = block_alloc_->count_all_free_blocks();
  const std::size_t live = count_nodes() + 2;  // + head and tail sentinels
  if (free_blocks + live != total_blocks)
    throw std::logic_error(
        "block leak: " + std::to_string(total_blocks) + " carved, " +
        std::to_string(free_blocks) + " free + " + std::to_string(live) +
        " live");
}

std::string UPSkipList::leak_report() {
  std::vector<std::uint64_t> free_rivs;
  block_alloc_->collect_free_rivs(&free_rivs);
  std::unordered_map<std::uint64_t, int> free_count;
  for (std::uint64_t r : free_rivs) ++free_count[r];

  std::unordered_set<std::uint64_t> live;
  live.insert(head_riv_);
  live.insert(tail_riv_);
  {
    std::uint64_t cur = pm_load(view(head_riv_).next(0));
    while (cur != 0) {
      NodeView v = view(cur);
      live.insert(cur);
      if (v.is_tail()) break;
      cur = pm_load(v.next(0));
    }
  }

  std::ostringstream os;
  for (const auto& [r, n] : free_count) {
    if (n > 1) os << "double-free: riv " << r << " accounted " << n << "x\n";
    if (live.count(r) != 0) os << "free-and-live: riv " << r << "\n";
  }

  const int hw = ThreadRegistry::high_water();
  auto referencing_slots = [&](std::uint64_t r) {
    std::string refs;
    for (int t = 0; t < hw; ++t) {
      const alloc::ThreadLog& log = block_alloc_->log_of(t);
      if (pm_load(log.block) == r)
        refs += " log[tid=" + std::to_string(t) +
                ",epoch=" + std::to_string(pm_load(log.epoch)) + "]";
      const alloc::MagazineDesc& d = block_alloc_->magazine_of(t);
      for (std::uint32_t i = 0; i < alloc::kMagazineSlots; ++i) {
        if (pm_load(d.alloc_rivs[i]) == r)
          refs += " mag[tid=" + std::to_string(t) + ",alloc_slot=" +
                  std::to_string(i) + ",epoch=" +
                  std::to_string(pm_load(d.epoch)) + "]";
        if (pm_load(d.ret_rivs[i]) == r)
          refs += " mag[tid=" + std::to_string(t) + ",ret_slot=" +
                  std::to_string(i) + ",epoch=" +
                  std::to_string(pm_load(d.epoch)) + "]";
      }
    }
    return refs.empty() ? std::string(" <no descriptor references>") : refs;
  };

  std::size_t leaked = 0;
  const std::uint64_t bs = block_alloc_->block_size();
  for (auto& ca : chunk_allocs_) {
    for (std::uint32_t c = 0; c < ca->header().max_chunks; ++c) {
      if (ca->dir_entry(c).state != alloc::ChunkState::kAllocated) continue;
      const std::uint64_t nblocks = ca->chunk_data_size() / bs;
      char* data = ca->chunk_data(c);
      for (std::uint64_t i = 0; i < nblocks; ++i) {
        const std::uint64_t r = ca->riv_of(data + i * bs);
        if (free_count.count(r) != 0 || live.count(r) != 0) continue;
        ++leaked;
        const auto* b = reinterpret_cast<const alloc::MemBlock*>(data + i * bs);
        os << "leaked riv " << r << ": state=" << std::hex
           << pm_load(b->state) << std::dec
           << " owner_tag=" << pm_load(b->owner_tag)
           << " epoch=" << pm_load(b->epoch_id)
           << " key0=" << pm_load(view(r).key(0)) << referencing_slots(r)
           << "\n";
      }
    }
  }
  os << leaked << " leaked blocks total (epoch now "
     << pm_load(*epoch_word_) << ")\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Allocation-log reachability (Function 3 lines 15-22)
// ---------------------------------------------------------------------------

bool UPSkipList::block_reachable(std::uint64_t riv) {
  // Classifier for stale magazine-descriptor entries: unlike kNodeAlloc logs
  // there is no recorded predecessor, so walk the bottom level from the head
  // until the key range passes the candidate's first key. The walk only runs
  // on blocks with durable non-free contents, and a node can only be linked
  // after its full initialization persisted (make_node), so key(0) of any
  // reachable candidate is durably correct — even under random-eviction
  // crashes.
  if (riv == head_riv_ || riv == tail_riv_) return true;
  const std::uint64_t key = pm_load(view(riv).key(0));
  std::uint64_t cur = pm_load(view(head_riv_).next(0));
  SpinGuard guard("block_reachable");
  while (cur != 0) {
    guard.tick();
    if (cur == riv) return true;
    NodeView v = view(cur);
    if (v.is_tail()) return false;
    if (v.first_key() > key) return false;
    cur = pm_load(v.next(0));
  }
  return false;
}

bool UPSkipList::log_block_reachable(const alloc::ThreadLog& log) {
  if (log.pred == 0) return true;  // sentinel bootstrap allocations
  std::uint64_t cur = log.pred;
  while (cur != 0) {
    if (cur == log.block) return true;
    NodeView v = view(cur);
    if (v.is_tail()) return false;
    if (cur != head_riv_ && v.first_key() > log.key) return false;
    cur = pm_load(v.next(0));
  }
  return false;
}

// ---------------------------------------------------------------------------
// Corruption-aware recovery (docs/integrity.md)
// ---------------------------------------------------------------------------

bool UPSkipList::valid_node_riv(std::uint64_t riv) const {
  if (riv == 0) return false;
  const riv::Decoded d = riv::decode(riv);
  const alloc::ChunkAllocator* ca = nullptr;
  for (const auto& c : chunk_allocs_)
    if (c->pool().id() == d.pool) {
      ca = c.get();
      break;
    }
  if (ca == nullptr) return false;
  if (d.chunk >= ca->header().max_chunks) return false;
  if (ca->dir_entry(d.chunk).state != alloc::ChunkState::kAllocated)
    return false;
  constexpr std::uint32_t kHdr =
      static_cast<std::uint32_t>(alloc::ChunkAllocator::kChunkHeaderSize);
  if (d.offset < kHdr) return false;
  const std::uint64_t bs = block_alloc_->block_size();
  const std::uint64_t data_off = d.offset - kHdr;
  if (data_off % bs != 0) return false;
  return data_off + bs <= ca->chunk_data_size();
}

bool UPSkipList::node_header_ok(NodeView v, std::uint64_t riv) const {
  const std::uint64_t meta = pm_load(v.meta());
  const auto height = static_cast<std::uint32_t>(meta & 0xff);
  // Semantic checks first: they hold for every legally written header and
  // catch a zeroed header line (height 0, self_riv 0) even though a zeroed
  // stamp reads as "unstamped" under the kill-switch-compatible convention.
  if (height < 1 || height > layout_.max_height) return false;
  if ((meta & 0xffffff00ull) != 0) return false;  // bits 8..31 always zero
  if (pm_load(v.self_riv()) != riv) return false;
  const std::uint64_t w[3] = {riv, pm_load(v.key(0)), height};
  return checksum_verify(w, sizeof(w),
                         static_cast<std::uint32_t>(meta >> 32));
}

void UPSkipList::quarantine_scan() {
  // The sentinels anchor everything — there is no structure to repair
  // around them, so damage there is detected-fatal, not quarantined.
  if (!valid_node_riv(head_riv_) || !valid_node_riv(tail_riv_) ||
      !node_header_ok(view(head_riv_), head_riv_) ||
      !node_header_ok(view(tail_riv_), tail_riv_))
    throw CorruptionError("sentinel node failed its header integrity check");

  auto& st = pmem::Stats::instance();
  NodeView pred = view(head_riv_);
  std::uint64_t last_good_key = kNullKey;  // head's routing key
  std::uint64_t cur = pm_load(pred.next(0));
  bool bridging = false;       // at least one node quarantined since `pred`
  std::uint64_t run_hops = 0;  // consecutive quarantined hops
  std::uint64_t total = 0;

  auto quarantine = [&](std::uint64_t riv, bool stamp_failed) {
    integrity_.quarantined_rivs.push_back(riv);
    ++integrity_.nodes_quarantined;
    st.quarantined_nodes.fetch_add(1, std::memory_order_relaxed);
    if (stamp_failed)
      st.checksum_failures.fetch_add(1, std::memory_order_relaxed);
  };
  auto amputate = [&] {
    // The chain past `pred` is unusable (unresolvable link or a cycle of
    // damage): bridge straight to the tail and report everything above the
    // last good key as lost. Conservative, but sound for the contract —
    // nothing is silently wrong, only explicitly lost.
    pm_store(pred.next(0), tail_riv_);
    persist(&pred.next(0), sizeof(std::uint64_t));
    integrity_.lost.push_back({last_good_key, kTailKey});
  };

  while (true) {
    if (cur == tail_riv_) {
      if (bridging) {
        pm_store(pred.next(0), tail_riv_);
        persist(&pred.next(0), sizeof(std::uint64_t));
        integrity_.lost.push_back({last_good_key, kTailKey});
      }
      break;
    }
    if (++total > (64ull << 20) || run_hops > 256) {
      amputate();
      break;
    }
    if (!valid_node_riv(cur)) {
      // The link itself is garbage: nothing safe to dereference, so the
      // rest of the chain is unreachable.
      quarantine(cur, /*stamp_failed=*/false);
      amputate();
      break;
    }
    NodeView v = view(cur);
    const bool header_ok = node_header_ok(v, cur);
    const std::uint64_t k0 = pm_load(v.key(0));
    // A good node must also sit in key order: a stamped-valid node whose
    // key0 is not strictly above the last good key means the *link* was
    // redirected (e.g. into an earlier node, a cycle seed) — hop through
    // rather than trust it here.
    if (header_ok && k0 > last_good_key && k0 < kTailKey) {
      if (bridging) {
        pm_store(pred.next(0), cur);
        persist(&pred.next(0), sizeof(std::uint64_t));
        integrity_.lost.push_back({last_good_key, k0});
        bridging = false;
      }
      ++integrity_.nodes_checked;
      pred = v;
      last_good_key = k0;
      run_hops = 0;
      cur = pm_load(v.next(0));
      continue;
    }
    quarantine(cur, /*stamp_failed=*/!header_ok);
    bridging = true;
    ++run_hops;
    cur = pm_load(v.next(0));
  }
}

IntegrityReport UPSkipList::verify_deep() {
  IntegrityReport r = integrity_;
  if (checksums_enabled()) {
    std::uint64_t last_key = kNullKey;
    std::uint64_t cur = pm_load(view(head_riv_).next(0));
    std::uint64_t total = 0;
    while (cur != tail_riv_) {
      if (!valid_node_riv(cur) || ++total > (64ull << 20)) {
        r.quarantined_rivs.push_back(cur);
        ++r.nodes_quarantined;
        r.lost.push_back({last_key, kTailKey});
        break;
      }
      NodeView v = view(cur);
      if (node_header_ok(v, cur)) {
        ++r.nodes_checked;
        last_key = pm_load(v.key(0));
      } else {
        r.quarantined_rivs.push_back(cur);
        ++r.nodes_quarantined;
        r.lost.push_back({last_key, kTailKey});
        break;
      }
      cur = pm_load(v.next(0));
    }
  }
  const auto& ac = block_alloc_->counters();
  r.magazines_quarantined +=
      ac.quarantined_magazines.load(std::memory_order_relaxed);
  r.blocks_quarantined +=
      ac.quarantined_blocks.load(std::memory_order_relaxed);
  return r;
}

UPSkipList::DurableMap UPSkipList::debug_durable_map() const {
  const alloc::ChunkAllocator& ca = *chunk_allocs_[0];
  const auto* root = reinterpret_cast<const StoreRoot*>(ca.root_area());
  const std::size_t root_off =
      static_cast<std::size_t>(ca.root_area() - ca.pool().base());
  const std::size_t num_pools = pm_load(root->num_pools);
  const std::size_t apc = pm_load(root->arenas_per_pool);
  const std::size_t sess_off = sessions_offset(num_pools, apc);
  const std::size_t root_size = ca.root_size();
  DurableMap m;
  m.root_off = root_off;
  m.magazines_off = root_off + magazines_offset(num_pools, apc);
  m.sessions_off = root_off + sess_off;
  m.sessions_bytes = sess_off < root_size ? root_size - sess_off : 0;
  return m;
}

std::uint64_t UPSkipList::debug_node_riv_for(std::uint64_t key) const {
  std::uint64_t best = 0;
  std::uint64_t cur = pm_load(view(head_riv_).next(0));
  while (cur != tail_riv_) {
    NodeView v = view(cur);
    if (pm_load(v.key(0)) > key) break;
    best = cur;
    cur = pm_load(v.next(0));
  }
  return best;
}

std::string IntegrityReport::to_json() const {
  std::ostringstream os;
  os << "{\"degraded\": " << (degraded() ? "true" : "false")
     << ", \"nodes_checked\": " << nodes_checked
     << ", \"nodes_quarantined\": " << nodes_quarantined
     << ", \"sessions_quarantined\": " << sessions_quarantined
     << ", \"magazines_quarantined\": " << magazines_quarantined
     << ", \"blocks_quarantined\": " << blocks_quarantined
     << ", \"root_mode_repaired\": " << (root_mode_repaired ? "true" : "false")
     << ", \"lost_ranges\": [";
  for (std::size_t i = 0; i < lost.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"lo\": " << lost[i].lo << ", \"hi\": " << lost[i].hi << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace upsl::core
