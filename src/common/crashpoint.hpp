// Cooperative crash-injection points.
//
// The thesis tests recovery with SIGABRT-simulated crashes and real power
// cycles (§6.1.2). In-process we cannot kill threads asynchronously without
// UB, so algorithms are instrumented with named crash points; a test arms a
// point (optionally "fire on the Nth hit") and the owning thread throws
// CrashException there, abandoning its operation mid-flight exactly where a
// kill would have landed. Combined with Pool::simulate_crash() (which drops
// all unflushed lines) this reproduces the set of post-failure states.
//
// In non-test builds nothing is ever armed and each crash point is a single
// relaxed atomic load on a false branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/compiler.hpp"

namespace upsl {

struct CrashException : std::runtime_error {
  CrashException() : std::runtime_error("injected crash") {}
};

class CrashPoints {
 public:
  static CrashPoints& instance() {
    static CrashPoints cp;
    return cp;
  }

  /// Arm: the `skip`-th subsequent hit of a crash point with this tag fires.
  /// tag 0 matches every crash point (crash at the Nth point reached).
  void arm(std::uint64_t tag, std::uint64_t skip = 0) {
    skip_.store(skip, std::memory_order_relaxed);
    tag_.store(tag, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  void disarm() { armed_.store(false, std::memory_order_release); }

  bool fired() const { return fired_.load(std::memory_order_acquire); }

  void reset() {
    disarm();
    fired_.store(false, std::memory_order_relaxed);
  }

  /// Called by instrumented code. Throws CrashException when this hit is the
  /// armed one.
  void hit(std::uint64_t tag) {
    if (UPSL_UNLIKELY(armed_.load(std::memory_order_acquire))) {
      const std::uint64_t want = tag_.load(std::memory_order_relaxed);
      if (want != 0 && want != tag) return;
      if (skip_.fetch_sub(1, std::memory_order_acq_rel) == 0) {
        armed_.store(false, std::memory_order_release);
        fired_.store(true, std::memory_order_release);
        throw CrashException{};
      }
    }
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> fired_{false};
  std::atomic<std::uint64_t> tag_{0};
  std::atomic<std::uint64_t> skip_{0};
};

/// Compile-time FNV-1a so call sites can tag points with string names.
constexpr std::uint64_t crash_tag(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  while (*s != '\0') {
    h ^= static_cast<std::uint64_t>(*s++);
    h *= 1099511628211ULL;
  }
  return h;
}

#define UPSL_CRASH_POINT(name)                                        \
  ::upsl::CrashPoints::instance().hit(                                \
      []() { constexpr auto t = ::upsl::crash_tag(name); return t; }())

}  // namespace upsl
