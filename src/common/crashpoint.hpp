// Cooperative crash-injection points.
//
// The thesis tests recovery with SIGABRT-simulated crashes and real power
// cycles (§6.1.2). In-process we cannot kill threads asynchronously without
// UB, so algorithms are instrumented with named crash points; a test arms a
// point (optionally "fire on the Nth hit") and the owning thread throws
// CrashException there, abandoning its operation mid-flight exactly where a
// kill would have landed. Combined with Pool::simulate_crash() (which drops
// all unflushed lines) this reproduces the set of post-failure states.
//
// Arming modes (ArmSpec):
//   * deterministic: fire on the `skip`-th matching hit (the classic mode,
//     also reachable through the legacy arm(tag, skip) overload);
//   * per-thread: restrict matching to one ThreadRegistry slot so the crash
//     lands in a chosen worker while its siblings are genuinely
//     mid-operation;
//   * probabilistic: every matching hit fires with probability p, drawn from
//     a per-thread xorshift stream seeded from (seed, thread id) so a run is
//     reproducible given the seed and each thread's hit sequence.
//
// Quiesce barrier: a process crash stops *all* threads, not one. With
// `spec.quiesce` set, the firing thread flips the arena into the QUIESCING
// state and every other thread's next hit() (or poll()) also throws
// CrashException. The harness joins its workers — all of them died at a
// crash point, i.e. at an instruction boundary of the modeled machine — and
// only then calls Pool::simulate_crash() to snapshot the persistence domain.
// Retry loops that spin on state owned by a (now dead) peer contain few or
// no crash points, so the skip list's spin guards also poll the quiesce flag
// (see SpinGuard in upskiplist.cpp); survivors cannot wedge on a lock whose
// holder crashed.
//
// Single-fire guarantee: the transition out of ARMED is a CAS, so exactly one
// thread wins the right to be "the crash" no matter how many race through a
// matching hit; the skip counter is signed and fires only on the exact zero
// decrement, so concurrent hits can never wrap it back around to a second
// firing window (they park it at increasingly negative values).
//
// In non-test builds nothing is ever armed and each crash point is a single
// relaxed atomic load on a false branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/compiler.hpp"
#include "common/thread_registry.hpp"

namespace upsl {

struct CrashException : std::runtime_error {
  CrashException() : std::runtime_error("injected crash") {}
};

class CrashPoints {
 public:
  static CrashPoints& instance() {
    static CrashPoints cp;
    return cp;
  }

  /// Full arming descriptor. Defaults reproduce the legacy behaviour:
  /// deterministic, any thread, no quiesce.
  struct ArmSpec {
    std::uint64_t tag = 0;     ///< 0 matches every crash point.
    std::uint64_t skip = 0;    ///< fire on the (skip+1)-th matching hit.
    int thread = -1;           ///< ThreadRegistry slot; -1 matches any thread.
    double probability = 0.0;  ///< >0: fire each matching hit with this
                               ///< probability instead of counting skips.
    std::uint64_t seed = 1;    ///< seeds the per-thread probabilistic streams.
    bool quiesce = false;      ///< after firing, kill every thread at its
                               ///< next hit()/poll() until reset().
  };

  void arm(const ArmSpec& spec) {
    // Publish the parameters before the mode word: hit() only reads them
    // after an acquire load observes kArmed, so it can never see a torn or
    // stale configuration (the legacy code stored tag_/skip_ plain-relaxed
    // against a concurrently counting hit()).
    tag_.store(spec.tag, std::memory_order_relaxed);
    skip_.store(static_cast<std::int64_t>(spec.skip),
                std::memory_order_relaxed);
    thread_.store(spec.thread, std::memory_order_relaxed);
    prob_threshold_.store(prob_to_threshold(spec.probability),
                          std::memory_order_relaxed);
    seed_.store(spec.seed ? spec.seed : 1, std::memory_order_relaxed);
    quiesce_.store(spec.quiesce, std::memory_order_relaxed);
    arm_gen_.fetch_add(1, std::memory_order_relaxed);
    mode_.store(kArmed, std::memory_order_release);
  }

  /// Legacy arming: the `skip`-th subsequent hit of a crash point with this
  /// tag fires, in any thread. tag 0 matches every crash point.
  void arm(std::uint64_t tag, std::uint64_t skip = 0) {
    ArmSpec spec;
    spec.tag = tag;
    spec.skip = skip;
    arm(spec);
  }

  /// Stops matching (and, if quiescing, stops killing survivors). fired()
  /// is left intact so a harness can still ask whether the crash happened.
  void disarm() { mode_.store(kDisarmed, std::memory_order_release); }

  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Tag of the point the crash actually fired at (diagnostics; 0 if none).
  std::uint64_t fired_tag() const {
    return fired_tag_.load(std::memory_order_acquire);
  }

  /// True between a quiesce-armed firing and the next disarm()/reset():
  /// every thread is expected to die at its next crash point. Harness worker
  /// loops poll this between operations so threads that would not otherwise
  /// pass a crash point (e.g. pure readers) still stop promptly.
  bool crashing() const {
    return mode_.load(std::memory_order_acquire) == kQuiescing;
  }

  /// Cooperative quiesce check: throws if a quiesce-armed crash has fired.
  void poll() {
    if (UPSL_UNLIKELY(crashing())) throw CrashException{};
  }

  void reset() {
    disarm();
    fired_.store(false, std::memory_order_relaxed);
    fired_tag_.store(0, std::memory_order_relaxed);
  }

  /// Called by instrumented code. Throws CrashException when this hit is the
  /// armed one (or when the process is quiescing after a fired crash).
  void hit(std::uint64_t tag) {
    const std::uint32_t mode = mode_.load(std::memory_order_acquire);
    if (UPSL_LIKELY(mode == kDisarmed)) return;
    if (mode == kQuiescing) throw CrashException{};
    // kArmed: check the match conditions, cheapest first.
    const std::uint64_t want = tag_.load(std::memory_order_relaxed);
    if (want != 0 && want != tag) return;
    const int want_thread = thread_.load(std::memory_order_relaxed);
    if (want_thread >= 0 && want_thread != ThreadRegistry::id()) return;
    bool due;
    const std::uint64_t threshold =
        prob_threshold_.load(std::memory_order_relaxed);
    if (threshold != 0) {
      due = next_local_draw() < threshold;
    } else {
      // Signed counter: only the thread that decrements exactly 0 -> -1 is
      // due; later racers drive it further negative and can never fire.
      due = skip_.fetch_sub(1, std::memory_order_acq_rel) == 0;
    }
    if (!due) return;
    // Single fire: only the CAS winner throws as "the crash". If a racer
    // already moved us to QUIESCING, this thread dies as a survivor instead.
    std::uint32_t expected = kArmed;
    const std::uint32_t next =
        quiesce_.load(std::memory_order_relaxed) ? kQuiescing : kDisarmed;
    if (!mode_.compare_exchange_strong(expected, next,
                                       std::memory_order_acq_rel)) {
      if (expected == kQuiescing) throw CrashException{};
      return;
    }
    fired_tag_.store(tag, std::memory_order_relaxed);
    fired_.store(true, std::memory_order_release);
    throw CrashException{};
  }

 private:
  enum : std::uint32_t { kDisarmed = 0, kArmed = 1, kQuiescing = 2 };

  static std::uint64_t prob_to_threshold(double p) {
    if (p <= 0.0) return 0;
    if (p >= 1.0) return ~0ull;
    const auto t = static_cast<std::uint64_t>(
        p * 18446744073709551616.0 /* 2^64 */);
    return t ? t : 1;
  }

  /// Finalizer from splitmix64: avalanches every input bit so neighboring
  /// (seed, thread) pairs seed decorrelated streams.
  static std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Per-thread xorshift64* stream, reseeded from (seed, thread id) whenever
  /// a new arming generation starts, so draws are reproducible per thread.
  std::uint64_t next_local_draw() {
    static constinit thread_local std::uint64_t state = 0;
    static constinit thread_local std::uint64_t gen = 0;
    const std::uint64_t g = arm_gen_.load(std::memory_order_relaxed);
    if (UPSL_UNLIKELY(gen != g || state == 0)) {
      gen = g;
      state = mix64(seed_.load(std::memory_order_relaxed) +
                    mix64(static_cast<std::uint64_t>(ThreadRegistry::id())));
      if (state == 0) state = 0x2545f4914f6cdd1dULL;
    }
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
  }

  std::atomic<std::uint32_t> mode_{kDisarmed};
  std::atomic<bool> fired_{false};
  std::atomic<bool> quiesce_{false};
  std::atomic<std::uint64_t> tag_{0};
  std::atomic<std::int64_t> skip_{0};
  std::atomic<int> thread_{-1};
  std::atomic<std::uint64_t> prob_threshold_{0};
  std::atomic<std::uint64_t> seed_{1};
  std::atomic<std::uint64_t> arm_gen_{0};
  std::atomic<std::uint64_t> fired_tag_{0};
};

/// Compile-time FNV-1a so call sites can tag points with string names.
constexpr std::uint64_t crash_tag(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  while (*s != '\0') {
    h ^= static_cast<std::uint64_t>(*s++);
    h *= 1099511628211ULL;
  }
  return h;
}

#define UPSL_CRASH_POINT(name)                                        \
  ::upsl::CrashPoints::instance().hit(                                \
      []() { constexpr auto t = ::upsl::crash_tag(name); return t; }())

}  // namespace upsl
