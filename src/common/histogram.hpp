// Log-bucketed latency histogram (HDR-histogram style) used by the YCSB
// driver to report the percentile series of Figures 5.5/5.6 and the medians
// of Table 5.3. Mergeable across threads; recording is wait-free per thread
// when each thread owns its histogram.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace upsl {

class LatencyHistogram {
 public:
  /// Buckets: 64 major (power of two) x 32 minor (linear subdivision).
  /// Covers [0, 2^63] ns with <= ~3% relative error.
  static constexpr int kMajor = 64;
  static constexpr int kMinor = 32;
  static constexpr int kMinorBits = 5;

  LatencyHistogram() : buckets_(kMajor * kMinor, 0) {}

  void record(std::uint64_t value_ns) {
    ++buckets_[index_of(value_ns)];
    ++count_;
    if (value_ns > max_) max_ = value_ns;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }

  /// Value at percentile p in [0, 100]. Returns the representative value of
  /// the bucket containing the p-th sample (upper edge midpoint).
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > rank) return representative(static_cast<int>(i));
    }
    return max_;
  }

  double mean() const {
    if (count_ == 0) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      // Skip empties: representative() of the topmost (never-occupied)
      // buckets would shift past 63, which is undefined.
      if (buckets_[i] == 0) continue;
      total += static_cast<double>(buckets_[i]) *
               static_cast<double>(representative(static_cast<int>(i)));
    }
    return total / static_cast<double>(count_);
  }

  void reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    max_ = 0;
  }

 private:
  static int index_of(std::uint64_t v) {
    if (v < kMinor) return static_cast<int>(v);
    const int major = 63 - __builtin_clzll(v);
    const int minor =
        static_cast<int>((v >> (major - kMinorBits)) & (kMinor - 1));
    return (major - kMinorBits + 1) * kMinor + minor;
  }

  static std::uint64_t representative(int idx) {
    const int major_block = idx / kMinor;
    const int minor = idx % kMinor;
    if (major_block == 0) return static_cast<std::uint64_t>(minor);
    const int major = major_block + kMinorBits - 1;
    const std::uint64_t base = 1ULL << major;
    const std::uint64_t step = base >> kMinorBits;
    return base + static_cast<std::uint64_t>(minor) * step + step / 2;
  }

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace upsl
