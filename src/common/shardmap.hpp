// Key-space shard map for the horizontally sharded server (docs/server.md).
//
// A sharded deployment partitions the key space across N fully independent
// UPSkipList stores ("shards"), each with its own pool set, allocator,
// DRAM-index rebuild, and worker group. The mapping key -> shard is a fixed
// hash: stateless, identical on every node of the system, and part of the
// wire contract — the server's dispatch layer and the header-only client
// both compute it, so a routed client hits the owning shard directly while
// an unrouted (pre-sharding) client is still served correctly via in-process
// forwarding.
//
// The hash is a full-avalanche 64-bit mix (splitmix64 finalizer) reduced
// modulo the shard count. Sequential keys — the common YCSB and test
// pattern — therefore spread uniformly instead of landing on one shard.
// The map is persisted per shard in the store root (shard_count,
// shard_index), so reopening a shard set validates that the pools on disk
// actually form the topology the server is about to announce.
#pragma once

#include <cstdint>

namespace upsl {

/// Identifies the fixed-hash map below on the wire (TOPOLOGY verb). Bump if
/// the mix or reduction ever changes — a client with a different map would
/// route keys to the wrong shard.
inline constexpr std::uint32_t kShardHashKindFixed = 1;

/// splitmix64 finalizer: full avalanche, so modulo reduction is unbiased
/// enough for any realistic shard count.
inline constexpr std::uint64_t shard_mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Owning shard of `key` among `shard_count` shards. shard_count == 0 is
/// treated as 1 (unsharded legacy stores record 0 in their root).
inline constexpr std::uint32_t shard_of_key(std::uint64_t key,
                                            std::uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::uint32_t>(shard_mix64(key) % shard_count);
}

}  // namespace upsl
