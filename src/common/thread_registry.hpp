// Stable small thread identities.
//
// The thesis' logging scheme (§4.1.4) assumes "the identity of a thread
// performing operations does not change during an epoch" and that post-crash
// threads may reuse the ids of pre-crash threads (§2.2, recoverable
// linearizability via id reuse). We model that with an explicit registry:
// worker threads bind a slot id for their lifetime; after a simulated crash
// the harness re-binds the same ids for the recovery-generation threads.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

namespace upsl {

inline constexpr int kMaxThreads = 256;

class ThreadRegistry {
 public:
  static ThreadRegistry& instance() {
    static ThreadRegistry reg;
    return reg;
  }

  /// Binds the calling thread to an explicit slot (used by crash-recovery
  /// harnesses that re-create "the same" threads after a failure).
  void bind(int id) {
    assert(id >= 0 && id < kMaxThreads);
    tls_id_ = id;
    note_bound(id);
  }

  /// Binds the calling thread to the next free slot and returns it.
  int bind_next() {
    const int id = next_.fetch_add(1, std::memory_order_relaxed) % kMaxThreads;
    tls_id_ = id;
    note_bound(id);
    return id;
  }

  /// Exclusive upper bound on thread ids ever bound in this process (never
  /// below 1, since unbound threads act as id 0). Lets per-thread-slot scans
  /// (e.g. magazine accounting) skip the untouched tail of kMaxThreads slots.
  static int high_water() {
    return instance().high_water_.load(std::memory_order_acquire);
  }

  /// Id of the calling thread; threads that never bound get slot 0.
  static int id() { return tls_id_ < 0 ? 0 : tls_id_; }

  static bool bound() { return tls_id_ >= 0; }

  /// Test helper: forget the calling thread's binding.
  static void unbind() { tls_id_ = -1; }

 private:
  ThreadRegistry() = default;
  static void note_bound(int id) {
    auto& hw = instance().high_water_;
    int cur = hw.load(std::memory_order_relaxed);
    while (cur < id + 1 &&
           !hw.compare_exchange_weak(cur, id + 1, std::memory_order_acq_rel)) {
    }
  }
  // Inline + constinit: constant-initialized TLS is accessed directly, with
  // no lazy-init wrapper call (which UBSan misreads as a nullable pointer).
  static constinit inline thread_local int tls_id_ = -1;
  std::atomic<int> next_{0};
  std::atomic<int> high_water_{1};
};

}  // namespace upsl
