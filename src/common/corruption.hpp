// Seeded corruption injection for mapped pool images.
//
// CrashPoints (crashpoint.hpp) models *power loss*: threads die at
// instruction boundaries and unflushed lines vanish. CorruptionPoints is
// the sibling for a *dishonest medium*: between a crash and the reopen, a
// test strikes the durable image with the three damage shapes real PM
// deployments report —
//
//   kBitFlip   one flipped bit anywhere in the target range;
//   kTornWord  a naturally-aligned 8-byte word whose bytes are partially
//              replaced (models a torn sub-8B write: x86 only guarantees
//              atomicity for aligned 8B stores, and a powerfail mid-line
//              can leave any byte-granularity mix);
//   kZeroLine  a whole 64-byte line reset to zero (dead/remapped line).
//
// Strikes are drawn from a seeded xorshift stream so every run is
// reproducible from (seed, strike count), and every strike is recorded
// (kind, offset, before/after word) so a failing torture seed prints
// exactly what was damaged. The injector mutates raw bytes only; the
// caller owns durability (after Pool::simulate_crash the caller re-syncs
// the persistence domain, e.g. mark_all_persisted(), so the damage is the
// durable truth and survives nested re-crashes).
//
// Driven by the durable-linearizability oracle in the ninth torture shard,
// this makes "every acked key is recovered intact or explicitly reported
// lost — never silently wrong" a checkable invariant.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace upsl {

enum class CorruptionKind : std::uint32_t {
  kBitFlip = 0,
  kTornWord = 1,
  kZeroLine = 2,
};

inline const char* corruption_kind_name(CorruptionKind k) {
  switch (k) {
    case CorruptionKind::kBitFlip:
      return "bit-flip";
    case CorruptionKind::kTornWord:
      return "torn-word";
    default:
      return "zero-line";
  }
}

/// One applied strike, for diagnostics and failing-seed repro lines.
struct CorruptionHit {
  CorruptionKind kind;
  std::size_t offset;     ///< byte offset of the damaged word/line start
  std::uint64_t before;   ///< first 8 bytes at `offset` before the strike
  std::uint64_t after;    ///< same word after the strike
};

class CorruptionPoints {
 public:
  static CorruptionPoints& instance() {
    static CorruptionPoints cp;
    return cp;
  }

  /// Arming descriptor: how many strikes to deal per strike() call, drawn
  /// from which damage shapes, reproducibly from `seed`.
  struct ArmSpec {
    std::uint64_t seed = 1;
    std::uint32_t strikes = 1;
    bool bit_flips = true;
    bool torn_words = true;
    bool zero_lines = true;
  };

  void arm(const ArmSpec& spec) {
    spec_ = spec;
    state_ = spec.seed ? spec.seed : 1;
    armed_ = true;
    hits_.clear();
  }

  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  /// Deal the armed number of strikes into [base, base+len), uniformly at
  /// seeded-random offsets. Appends to hits() and returns what this call
  /// did. No-op (empty) when disarmed or the range is too small.
  std::vector<CorruptionHit> strike(char* base, std::size_t len) {
    std::vector<CorruptionHit> done;
    if (!armed_ || base == nullptr || len < 64) return done;
    for (std::uint32_t i = 0; i < spec_.strikes; ++i) {
      CorruptionKind kind = draw_kind();
      CorruptionHit hit{};
      switch (kind) {
        case CorruptionKind::kBitFlip:
          hit = bit_flip(base, len, next());
          break;
        case CorruptionKind::kTornWord:
          hit = torn_word(base, len, next());
          break;
        case CorruptionKind::kZeroLine:
          hit = zero_line(base, len, next());
          break;
      }
      done.push_back(hit);
      hits_.push_back(hit);
    }
    return done;
  }

  const std::vector<CorruptionHit>& hits() const { return hits_; }

  void reset() {
    armed_ = false;
    hits_.clear();
  }

  // ---- the three primitive strikes, usable standalone by tests ------------

  /// Flip one seeded-random bit in [base, base+len).
  static CorruptionHit bit_flip(char* base, std::size_t len,
                                std::uint64_t draw) {
    const std::size_t bit = static_cast<std::size_t>(draw % (len * 8));
    const std::size_t byte = bit / 8;
    CorruptionHit hit{CorruptionKind::kBitFlip, byte & ~std::size_t{7}, 0, 0};
    std::memcpy(&hit.before, base + hit.offset, 8);
    base[byte] = static_cast<char>(base[byte] ^ (1u << (bit % 8)));
    std::memcpy(&hit.after, base + hit.offset, 8);
    return hit;
  }

  /// Tear one naturally-aligned 8-byte word: replace a strict nonempty
  /// subset of its bytes with pseudorandom garbage.
  static CorruptionHit torn_word(char* base, std::size_t len,
                                 std::uint64_t draw) {
    const std::size_t words = len / 8;
    const std::size_t off = (static_cast<std::size_t>(draw) % words) * 8;
    CorruptionHit hit{CorruptionKind::kTornWord, off, 0, 0};
    std::memcpy(&hit.before, base + off, 8);
    // 1..7 torn bytes, garbage derived from the same draw so the strike is
    // a pure function of (range, draw).
    const unsigned torn = 1 + static_cast<unsigned>((draw >> 32) % 7);
    std::uint64_t garbage = draw * 0x9e3779b97f4a7c15ull;
    for (unsigned b = 0; b < torn; ++b) {
      base[off + b] = static_cast<char>(garbage >> (8 * b));
    }
    std::memcpy(&hit.after, base + off, 8);
    return hit;
  }

  /// Zero one 64-byte line containing a seeded-random offset.
  static CorruptionHit zero_line(char* base, std::size_t len,
                                 std::uint64_t draw) {
    const std::size_t lines = len / 64;
    const std::size_t off = (static_cast<std::size_t>(draw) % lines) * 64;
    CorruptionHit hit{CorruptionKind::kZeroLine, off, 0, 0};
    std::memcpy(&hit.before, base + off, 8);
    std::memset(base + off, 0, 64);
    hit.after = 0;
    return hit;
  }

 private:
  CorruptionKind draw_kind() {
    // Rejection-free draw over the enabled kinds.
    CorruptionKind enabled[3];
    std::uint32_t n = 0;
    if (spec_.bit_flips) enabled[n++] = CorruptionKind::kBitFlip;
    if (spec_.torn_words) enabled[n++] = CorruptionKind::kTornWord;
    if (spec_.zero_lines) enabled[n++] = CorruptionKind::kZeroLine;
    if (n == 0) return CorruptionKind::kBitFlip;
    return enabled[next() % n];
  }

  /// xorshift64*, same generator family as CrashPoints' per-thread streams.
  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  ArmSpec spec_{};
  std::uint64_t state_ = 1;
  bool armed_ = false;
  std::vector<CorruptionHit> hits_;
};

}  // namespace upsl
