// One-time runtime CPU feature detection for the SIMD kernels in simd.hpp.
//
// The store is built without -mavx2 so the same binary runs on any x86-64
// (or non-x86) host; vector paths are compiled with per-function target
// attributes and selected once at startup from CPUID, demoted by the
// UPSL_DISABLE_SIMD=1 environment kill switch (useful for A/B benchmarking
// and for falling back if a vector path is ever suspected of misbehaving).
#pragma once

#include <cstdlib>
#include <cstring>

namespace upsl {

/// Vector width the dispatched kernels run at, best-first.
enum class SimdLevel {
  kAvx2,    // 4 x 64-bit lanes (32-byte vectors)
  kSse2,    // 2 x 64-bit lanes (16-byte vectors, x86-64 baseline)
  kScalar,  // portable fallback
};

inline const char* simd_level_name(SimdLevel l) {
  switch (l) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kSse2:
      return "sse2";
    default:
      return "scalar";
  }
}

/// Pure decision function: what level to run given the hardware facts and
/// the kill switch. Split out from the cached singleton so tests can probe
/// every combination without re-execing the process.
inline SimdLevel resolve_simd_level(bool disabled_by_env, bool have_avx2,
                                    bool have_sse2) {
  if (disabled_by_env) return SimdLevel::kScalar;
  if (have_avx2) return SimdLevel::kAvx2;
  if (have_sse2) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}

inline bool simd_disabled_by_env() {
  const char* v = std::getenv("UPSL_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

namespace detail {

inline bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

inline bool cpu_has_sse2() {
#if defined(__x86_64__)
  return true;  // architectural baseline
#elif defined(__i386__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  return __builtin_cpu_supports("sse2") != 0;
#else
  return false;
#endif
}

}  // namespace detail

/// The level this process should run at, from CPUID + the kill switch.
/// Uncached so a dispatch reset (simd.hpp) re-reads the environment; the
/// dispatched kernel table in simd.hpp is what hot paths consult.
inline SimdLevel active_simd_level() {
  return resolve_simd_level(simd_disabled_by_env(), detail::cpu_has_avx2(),
                            detail::cpu_has_sse2());
}

}  // namespace upsl
