// Vectorized intra-node key search (§4.4's hot loop).
//
// A traversal resolves a key inside a multi-key node by scanning up to
// keys_per_node (tuned to 256, §5.1.2) unsorted 8-byte slots. That scan is
// the single hottest loop in search/insert/remove, so it gets SIMD kernels:
// broadcast the target, compare 2 (SSE2) / 8 (AVX2, two vectors) keys per
// iteration, movemask + tzcnt to recover the first matching index. A second
// kernel family serves the sorted-prefix nodes produced by
// Options::sorted_splits: a branch-light block search that replaces the §7
// binary search — compare a whole block for equality, and use an unsigned
// greater-than block compare to stop as soon as the prefix has passed the
// target. Unlike the old binary search it tolerates kNullKey holes anywhere
// in the prefix (nulls compare as "keep going", never as a misordered key).
//
// Dispatch is resolved once at runtime from CPUID (common/cpu_features.hpp)
// so the binary carries no ISA requirement beyond x86-64 baseline;
// UPSL_DISABLE_SIMD=1 demotes to the scalar kernels. The kernels read the
// key slots with plain (non-atomic_ref) loads: slots are naturally aligned
// 8-byte words, which x86 loads whole, and every caller already validates
// scan results against the node's split counter, so a racing slot-claim CAS
// is observed as either the old or the new key — the same outcomes the
// scalar pm_load scan produced.
//
// Kernel contract (shared by all ISA variants, verified by the differential
// tests in tests/simd_test.cpp):
//   find_u64        first index i in [begin, end) with keys[i] == target,
//                   else -1. No ordering assumption.
//   find_sorted_u64 same, for arrays whose non-null keys are strictly
//                   ascending (nulls may appear anywhere); requires
//                   target != kNullKey (0). Returns -1 early once a key
//                   greater than target proves the target absent.
//   range_mask_u64  set bit i of the output mask for every i in [0, count)
//                   with lo <= keys[i] <= hi, and return the number of set
//                   bits. No ordering assumption; count <= 64 * mask words
//                   provided by the caller. Callers pass lo >= 1 so kNullKey
//                   holes (0) are rejected by the range check itself — the
//                   kernel needs no null special case. This is the SCAN
//                   filter: one pass over a node's key array replaces the
//                   per-slot bounds branches of the scalar scan loop.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/compiler.hpp"
#include "common/cpu_features.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UPSL_SIMD_X86 1
#include <immintrin.h>
#endif

namespace upsl::simd {

using FindFn = std::int32_t (*)(const std::uint64_t*, std::uint32_t,
                                std::uint32_t, std::uint64_t);
using RangeMaskFn = std::uint32_t (*)(const std::uint64_t*, std::uint32_t,
                                      std::uint64_t, std::uint64_t,
                                      std::uint64_t*);

// ---- scalar kernels (portable reference) ----------------------------------

inline std::int32_t find_u64_scalar(const std::uint64_t* keys,
                                    std::uint32_t begin, std::uint32_t end,
                                    std::uint64_t target) {
  for (std::uint32_t i = begin; i < end; ++i)
    if (keys[i] == target) return static_cast<std::int32_t>(i);
  return -1;
}

inline std::int32_t find_sorted_u64_scalar(const std::uint64_t* keys,
                                           std::uint32_t begin,
                                           std::uint32_t end,
                                           std::uint64_t target) {
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint64_t k = keys[i];
    if (k == target) return static_cast<std::int32_t>(i);
    if (k > target) return -1;  // nulls (0) never trip this: target >= 1
  }
  return -1;
}

inline std::uint32_t range_mask_u64_scalar(const std::uint64_t* keys,
                                           std::uint32_t count,
                                           std::uint64_t lo, std::uint64_t hi,
                                           std::uint64_t* mask) {
  for (std::uint32_t w = 0; w < (count + 63) / 64; ++w) mask[w] = 0;
  std::uint32_t matches = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t k = keys[i];
    if (k >= lo && k <= hi) {
      mask[i >> 6] |= 1ULL << (i & 63);
      ++matches;
    }
  }
  return matches;
}

// ---- x86 kernels ----------------------------------------------------------

#ifdef UPSL_SIMD_X86

/// SSE2 has no 64-bit lane equality; build it from two 32-bit compares:
/// a 64-bit lane is equal iff both of its 32-bit halves are.
inline std::int32_t find_u64_sse2(const std::uint64_t* keys,
                                  std::uint32_t begin, std::uint32_t end,
                                  std::uint64_t target) {
  const __m128i t = _mm_set1_epi64x(static_cast<long long>(target));
  std::uint32_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const __m128i eq32 = _mm_cmpeq_epi32(v, t);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const int m = _mm_movemask_pd(_mm_castsi128_pd(eq64));
    if (m != 0)
      return static_cast<std::int32_t>(i) + __builtin_ctz(static_cast<unsigned>(m));
  }
  for (; i < end; ++i)
    if (keys[i] == target) return static_cast<std::int32_t>(i);
  return -1;
}

__attribute__((target("avx2"))) inline std::int32_t find_u64_avx2(
    const std::uint64_t* keys, std::uint32_t begin, std::uint32_t end,
    std::uint64_t target) {
  const __m256i t = _mm256_set1_epi64x(static_cast<long long>(target));
  std::uint32_t i = begin;
  // Two vectors per iteration: one combined mask test per 8 keys keeps the
  // loop at a single well-predicted branch per cache line of keys.
  for (; i + 8 <= end; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    const int ma = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, t)));
    const int mb = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(b, t)));
    const int m = ma | (mb << 4);
    if (m != 0)
      return static_cast<std::int32_t>(i) + __builtin_ctz(static_cast<unsigned>(m));
  }
  for (; i + 4 <= end; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, t)));
    if (m != 0)
      return static_cast<std::int32_t>(i) + __builtin_ctz(static_cast<unsigned>(m));
  }
  for (; i < end; ++i)
    if (keys[i] == target) return static_cast<std::int32_t>(i);
  return -1;
}

__attribute__((target("avx2"))) inline std::int32_t find_sorted_u64_avx2(
    const std::uint64_t* keys, std::uint32_t begin, std::uint32_t end,
    std::uint64_t target) {
  const __m256i t = _mm256_set1_epi64x(static_cast<long long>(target));
  // AVX2 64-bit compares are signed; flipping the sign bit of both sides
  // turns them into unsigned compares. Nulls flip to INT64_MIN and so never
  // register as "greater", matching the scalar kernel's null handling.
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
  const __m256i tb = _mm256_xor_si256(t, bias);
  std::uint32_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const int meq =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, t)));
    if (meq != 0)
      return static_cast<std::int32_t>(i) + __builtin_ctz(static_cast<unsigned>(meq));
    const int mgt = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpgt_epi64(_mm256_xor_si256(v, bias), tb)));
    if (mgt != 0) return -1;  // prefix has passed the target; it is absent
  }
  for (; i < end; ++i) {
    const std::uint64_t k = keys[i];
    if (k == target) return static_cast<std::int32_t>(i);
    if (k > target) return -1;
  }
  return -1;
}

/// Range filter: 8 keys per iteration, one mask byte written per pair of
/// vectors. Signed compares are turned unsigned with the same sign-bit bias
/// as find_sorted_u64_avx2; in-range is the complement of (below-lo OR
/// above-hi), so each lane costs two compares, one OR and no blends.
__attribute__((target("avx2"))) inline std::uint32_t range_mask_u64_avx2(
    const std::uint64_t* keys, std::uint32_t count, std::uint64_t lo,
    std::uint64_t hi, std::uint64_t* mask) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
  const __m256i lob =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(lo)), bias);
  const __m256i hib =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(hi)), bias);
  for (std::uint32_t w = 0; w < (count + 63) / 64; ++w) mask[w] = 0;
  std::uint32_t matches = 0;
  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i a = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    const __m256i b = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4)),
        bias);
    const int outa = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_or_si256(
        _mm256_cmpgt_epi64(lob, a), _mm256_cmpgt_epi64(a, hib))));
    const int outb = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_or_si256(
        _mm256_cmpgt_epi64(lob, b), _mm256_cmpgt_epi64(b, hib))));
    const unsigned m =
        ~static_cast<unsigned>(outa | (outb << 4)) & 0xffu;
    // i is a multiple of 8 here, so the byte never straddles a mask word.
    mask[i >> 6] |= static_cast<std::uint64_t>(m) << (i & 63);
    matches += static_cast<unsigned>(__builtin_popcount(m));
  }
  for (; i < count; ++i) {
    const std::uint64_t k = keys[i];
    if (k >= lo && k <= hi) {
      mask[i >> 6] |= 1ULL << (i & 63);
      ++matches;
    }
  }
  return matches;
}

#endif  // UPSL_SIMD_X86

// ---- one-time runtime dispatch --------------------------------------------

/// The kernel set for one SIMD level. SSE2 keeps the scalar sorted and range
/// kernels: emulating unsigned 64-bit greater-than in SSE2 costs more than
/// it saves.
struct Kernels {
  FindFn find;
  FindFn find_sorted;
  RangeMaskFn range_mask;
  SimdLevel level;
};

namespace detail {

inline constexpr Kernels kScalarKernels{&find_u64_scalar,
                                        &find_sorted_u64_scalar,
                                        &range_mask_u64_scalar,
                                        SimdLevel::kScalar};
#ifdef UPSL_SIMD_X86
inline constexpr Kernels kSse2Kernels{&find_u64_sse2, &find_sorted_u64_scalar,
                                      &range_mask_u64_scalar,
                                      SimdLevel::kSse2};
inline constexpr Kernels kAvx2Kernels{&find_u64_avx2, &find_sorted_u64_avx2,
                                      &range_mask_u64_avx2,
                                      SimdLevel::kAvx2};
#endif

inline const Kernels* kernels_for(SimdLevel level) {
#ifdef UPSL_SIMD_X86
  if (level == SimdLevel::kAvx2) return &kAvx2Kernels;
  if (level == SimdLevel::kSse2) return &kSse2Kernels;
#else
  (void)level;
#endif
  return &kScalarKernels;
}

inline std::atomic<const Kernels*> g_kernels{nullptr};

inline const Kernels* init_kernels() {
  const Kernels* k = kernels_for(active_simd_level());
  g_kernels.store(k, std::memory_order_release);
  return k;
}

}  // namespace detail

/// The dispatched kernel set, resolved on first use (benign race: every
/// racer computes the same pointer).
UPSL_ALWAYS_INLINE const Kernels& kernels() {
  const Kernels* k = detail::g_kernels.load(std::memory_order_acquire);
  if (UPSL_UNLIKELY(k == nullptr)) k = detail::init_kernels();
  return *k;
}

/// Drop the cached dispatch so the next use re-reads UPSL_DISABLE_SIMD and
/// CPUID. Test hook; not safe while store operations are in flight.
inline void reset_dispatch_for_testing() {
  detail::g_kernels.store(nullptr, std::memory_order_release);
}

inline SimdLevel dispatched_level() { return kernels().level; }

UPSL_ALWAYS_INLINE std::int32_t find_u64(const std::uint64_t* keys,
                                         std::uint32_t begin, std::uint32_t end,
                                         std::uint64_t target) {
  return kernels().find(keys, begin, end, target);
}

UPSL_ALWAYS_INLINE std::int32_t find_sorted_u64(const std::uint64_t* keys,
                                                std::uint32_t begin,
                                                std::uint32_t end,
                                                std::uint64_t target) {
  return kernels().find_sorted(keys, begin, end, target);
}

UPSL_ALWAYS_INLINE std::uint32_t range_mask_u64(const std::uint64_t* keys,
                                                std::uint32_t count,
                                                std::uint64_t lo,
                                                std::uint64_t hi,
                                                std::uint64_t* mask) {
  return kernels().range_mask(keys, count, lo, hi, mask);
}

}  // namespace upsl::simd
