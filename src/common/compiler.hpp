// Small compiler/portability helpers shared by all modules.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define UPSL_LIKELY(x) __builtin_expect(!!(x), 1)
#define UPSL_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define UPSL_NOINLINE __attribute__((noinline))
#define UPSL_ALWAYS_INLINE __attribute__((always_inline)) inline
/// Read-intent software prefetch; safe on any address, including ones the
/// program never dereferences.
#define UPSL_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define UPSL_LIKELY(x) (x)
#define UPSL_UNLIKELY(x) (x)
#define UPSL_NOINLINE
#define UPSL_ALWAYS_INLINE inline
#define UPSL_PREFETCH(addr) ((void)(addr))
#endif

namespace upsl {

/// Cache line size assumed by the persistence model. Real Optane persists in
/// 256-byte internal blocks but the CPU flush granularity is the 64-byte line,
/// which is what CLWB/CLFLUSHOPT operate on and what recovery reasoning uses.
inline constexpr std::size_t kCacheLineSize = 64;

constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t a) {
  return v & ~(a - 1);
}
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace upsl
