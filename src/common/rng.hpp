// Fast deterministic PRNGs used by workload generation, height selection and
// crash fuzzing. Kept header-only; every generator is seedable so tests and
// benchmarks are reproducible.
#pragma once

#include <cstdint>

namespace upsl {

/// splitmix64: used to seed other generators and to scramble keys.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (fmix64 from MurmurHash3). Used for
/// scrambled-zipfian key spreading.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

/// xoshiro256**: general-purpose generator for everything that is not
/// cryptographic (nothing here is).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Geometric(p = 0.5) sample >= 1, capped: number of leading coin flips
  /// that came up heads, plus one. Used for skip list tower heights.
  int geometric_height(int max_height) {
    const std::uint64_t bits = next();
    int h = 1;
    while (h < max_height && (bits >> (h - 1) & 1u) != 0) ++h;
    return h;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace upsl
