#include "common/thread_registry.hpp"

namespace upsl {

thread_local int ThreadRegistry::tls_id_ = -1;

}  // namespace upsl
