#include "common/thread_registry.hpp"

// tls_id_ is defined inline in the header (constant-initialized TLS needs
// no out-of-line definition); this TU just anchors the header.
