// CRC32C for durable-state integrity stamps.
//
// Crash torture proves the store survives power loss; this layer is for a
// dishonest medium — bit flips, torn sub-8B writes, dead lines. Every
// durable metadata surface with a spare word (node header, StoreRoot,
// MagazineDesc alloc side, session slots, PMDK tx log) carries a CRC32C of
// its checksummed bytes, stamped with the same persist/ack line the surface
// already pays, and verified on every recovery path so damage is detected
// and quarantined instead of trusted.
//
// Kernel dispatch mirrors simd.hpp: the binary is built without -msse4.2,
// the hardware kernel (CRC32 instruction, ~1B/cycle per 8B word) is compiled
// with a per-function target attribute and selected once from CPUID, with a
// table-driven software fallback. UPSL_DISABLE_CHECKSUMS=1 is the kill
// switch: stamps become 0 and verification always passes.
//
// Format compatibility both directions rides one convention: the stamp
// value 0 means "unstamped" (a computed CRC of 0 is mapped to 1, so 0 is
// never a real stamp). A store written with checksums off verifies clean
// under a checksums-on reader (every stamp is 0 = unstamped), and a store
// written with checksums on opens under a checksums-off reader (verification
// is skipped entirely). Note the useful corollary: CRC32C of an all-zero
// region is nonzero for any nonzero length, so a zeroed cache line under a
// real stamp is always detected.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/compiler.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UPSL_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace upsl {

/// Thrown when a durable surface fails its integrity stamp and the damage is
/// unrecoverable in place (e.g. the StoreRoot). Distinct from the
/// std::runtime_error a topology mismatch raises at ShardSet reopen, so
/// callers can tell "wrong pool set" from "damaged medium".
class CorruptionError : public std::runtime_error {
 public:
  explicit CorruptionError(const std::string& what)
      : std::runtime_error("corruption detected: " + what) {}
};

namespace detail {
inline std::atomic<int>& checksum_flag() {
  static std::atomic<int> flag{-1};  // -1 = env not read yet
  return flag;
}
}  // namespace detail

/// Kill switch (same cached-atomic idiom as UPSL_DISABLE_DETECT).
inline bool checksums_enabled() {
  int v = detail::checksum_flag().load(std::memory_order_relaxed);
  if (UPSL_UNLIKELY(v < 0)) {
    const char* e = std::getenv("UPSL_DISABLE_CHECKSUMS");
    v = (e != nullptr && e[0] != '\0' && e[0] != '0') ? 0 : 1;
    detail::checksum_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// In-process kill-switch override for A/B benchmarking and tests.
inline void set_checksums_for_testing(bool on) {
  detail::checksum_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Drop the cached decision so the next use re-reads the environment.
inline void reset_checksums_for_testing() {
  detail::checksum_flag().store(-1, std::memory_order_relaxed);
}

/// Which CRC32C kernel the process runs, best-first.
enum class Crc32cKernel {
  kSse42,     // hardware CRC32 instruction
  kSoftware,  // table-driven portable fallback
};

inline const char* crc32c_kernel_name(Crc32cKernel k) {
  return k == Crc32cKernel::kSse42 ? "sse4.2" : "software";
}

/// Pure decision function (testable without re-execing, like
/// resolve_simd_level). The kill switch does not demote the kernel — it
/// skips checksumming entirely — so the only input is the hardware fact.
inline Crc32cKernel resolve_crc32c_kernel(bool have_sse42) {
  return have_sse42 ? Crc32cKernel::kSse42 : Crc32cKernel::kSoftware;
}

namespace detail {

inline bool cpu_has_sse42() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

/// Castagnoli polynomial (reflected), the one the SSE4.2 instruction bakes
/// in. Table built once on first use; the benign init race is harmless
/// (every racer writes identical values).
inline const std::uint32_t* crc32c_table() {
  static const auto* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b)
        c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

inline std::uint32_t crc32c_software(const void* data, std::size_t len,
                                     std::uint32_t crc) {
  const std::uint32_t* t = crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i)
    crc = t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

#ifdef UPSL_CRC32C_X86
__attribute__((target("sse4.2"))) inline std::uint32_t crc32c_sse42(
    const void* data, std::size_t len, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = ~crc;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    len -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (len > 0) {
    c32 = _mm_crc32_u8(c32, *p);
    ++p;
    --len;
  }
  return ~c32;
}
#endif

using Crc32cFn = std::uint32_t (*)(const void*, std::size_t, std::uint32_t);

struct Crc32cDispatch {
  Crc32cFn fn;
  Crc32cKernel kernel;
};

inline std::atomic<const Crc32cDispatch*> g_crc32c{nullptr};

inline const Crc32cDispatch* init_crc32c() {
  static const Crc32cDispatch kSoftware{&crc32c_software,
                                        Crc32cKernel::kSoftware};
#ifdef UPSL_CRC32C_X86
  static const Crc32cDispatch kHw{&crc32c_sse42, Crc32cKernel::kSse42};
  const Crc32cDispatch* d =
      resolve_crc32c_kernel(cpu_has_sse42()) == Crc32cKernel::kSse42
          ? &kHw
          : &kSoftware;
#else
  const Crc32cDispatch* d = &kSoftware;
#endif
  g_crc32c.store(d, std::memory_order_release);
  return d;
}

UPSL_ALWAYS_INLINE const Crc32cDispatch& crc32c_dispatch() {
  const Crc32cDispatch* d = g_crc32c.load(std::memory_order_acquire);
  if (UPSL_UNLIKELY(d == nullptr)) d = init_crc32c();
  return *d;
}

}  // namespace detail

/// Raw CRC32C (Castagnoli) of `len` bytes, seedable for incremental use.
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) {
  return detail::crc32c_dispatch().fn(data, len, seed);
}

inline Crc32cKernel dispatched_crc32c_kernel() {
  return detail::crc32c_dispatch().kernel;
}

/// Test hook: re-resolve the kernel on next use.
inline void reset_crc32c_dispatch_for_testing() {
  detail::g_crc32c.store(nullptr, std::memory_order_release);
}

// ---- stamp/verify conventions ---------------------------------------------

/// A stamp is a CRC32C with 0 reserved to mean "unstamped": a computed 0 is
/// mapped to 1. Losing one codeword out of 2^32 is a fine trade for
/// kill-switch format compatibility in both directions.
inline std::uint32_t checksum_stamp_value(const void* data, std::size_t len) {
  const std::uint32_t c = crc32c(data, len);
  return c == 0 ? 1u : c;
}

/// Stamp for a durable field: the real CRC when checksums are on, 0
/// (= unstamped) when they are off.
inline std::uint32_t checksum_stamp(const void* data, std::size_t len) {
  if (!checksums_enabled()) return 0;
  return checksum_stamp_value(data, len);
}

/// Verify a stored stamp. Passes when checksums are off (reader side of the
/// kill switch) and when the stamp is 0 (writer ran with checksums off).
inline bool checksum_verify(const void* data, std::size_t len,
                            std::uint32_t stored) {
  if (!checksums_enabled()) return true;
  if (stored == 0) return true;  // unstamped: written with checksums off
  return stored == checksum_stamp_value(data, len);
}

}  // namespace upsl
